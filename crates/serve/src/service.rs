//! The solve service: plan key (fingerprint + ordering) → cached plan →
//! (batched) solve.
//!
//! [`SolveService`] fronts the whole SPCG pipeline behind two entry
//! styles:
//!
//! * **Synchronous** — [`solve`](SolveService::solve) /
//!   [`solve_in_place`](SolveService::solve_in_place) run on the calling
//!   thread. The in-place variant is the zero-allocation hot path: once a
//!   plan is cached and the caller's workspace is warm, a request performs
//!   no heap allocation at all (fingerprint, cache hit, PCG loop included).
//! * **Queued** — build a [`SolveRequest`] and hand it to
//!   [`submit`](SolveService::submit) /
//!   [`try_submit`](SolveService::try_submit): the request goes to a
//!   `std::thread` worker pool behind a bounded queue (`try_submit` is the
//!   backpressure edge: it fails fast with [`ServeError::QueueFull`]).
//!   A request carrying a [`RequestPolicy`] passes through admission
//!   control first and may be downgraded or shed. A worker that dequeues a
//!   request waits out a small **admission window**, then drains every
//!   same-fingerprint request still queued and solves them as one batch
//!   through a single reused workspace — the cross-request analogue of
//!   [`SpcgPlan::solve_many`]. A queued request can be withdrawn with
//!   [`Ticket::cancel`] until a worker picks it up.
//! * **Sessions** — [`open_session`](SolveService::open_session) pins one
//!   evolving system (fixed sparsity structure, drifting values) to a
//!   [`Session`]: each [`step`](Session::step) reuses the cached plan when
//!   the values are unchanged, refreshes only the numeric factorization
//!   ([`SpcgPlan::refresh_values`]) when they drift, and warm-starts PCG
//!   from the previous step's solution ([`SpcgPlan::solve_from`]).
//!
//! Requests fail independently: a right-hand side that breaks down falls
//! back to the resilient ladder ([`SpcgPlan::solve_resilient`]) without
//! touching its batchmates, and a poisoned request (injected fault) recovers
//! or degrades alone.
//!
//! Numerics are identical on every path: a batched, cached, multi-worker
//! solve returns bit-for-bit the vector a fresh single-threaded
//! [`SpcgPlan::solve`] would (asserted by this crate's tests).

use crate::admission::{decide, Admission, LoadSnapshot, ShedReason, TierCost, TierCosts};
use crate::breaker::{BreakerConfig, BreakerCounters, BreakerDecision, BreakerRegistry};
use crate::cache::{CacheConfig, CacheStats, PlanCache, PlanKey};
use crate::policy::{RequestPolicy, SolveTier};
use crate::queue::{BoundedQueue, PushError};
use spcg_core::{
    FaultInjection, IluFill, OrderingKind, PrecondKind, ResilienceOptions, SpcgOptions, SpcgPlan,
};
use spcg_gpusim::{
    dot_cost, elementwise_cost, estimate_from_structure, iteration_budget, plan_iteration_cost,
    spmv_cost, value_bytes_of, DeviceSpec,
};
use spcg_precond::JacobiPreconditioner;
use spcg_probe::{AdmissionEvent, AdmissionVerdict, Counter, Probe, Span};
use spcg_solver::{
    pcg_with_workspace, SolveResult, SolveStats, SolveWorkspace, SolverError, StopReason,
};
use spcg_sparse::{CsrMatrix, MatrixFingerprint, Scalar, SparseError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`SolveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool (min 1).
    pub workers: usize,
    /// Bounded queue depth; `try_submit` fails once it is full.
    pub queue_capacity: usize,
    /// How long a worker waits after dequeuing a request for
    /// same-fingerprint requests to arrive before solving. Zero disables
    /// coalescing delay (the worker still drains whatever already queued).
    pub batch_window: Duration,
    /// Maximum right-hand sides coalesced into one batch.
    pub batch_limit: usize,
    /// Plan-cache sizing.
    pub cache: CacheConfig,
    /// Pipeline options used to build every plan.
    pub options: SpcgOptions,
    /// Ladder options for breakdown fallback (`fault` is overridden
    /// per-request; see [`SolveRequest::fault`]).
    pub resilience: ResilienceOptions,
    /// Device cost model backing admission pricing (deadline feasibility,
    /// queue-wait estimation, iteration budgets).
    pub device: DeviceSpec,
    /// Circuit-breaker tuning for repeatedly failing fingerprints.
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            batch_window: Duration::from_micros(200),
            batch_limit: 32,
            cache: CacheConfig::default(),
            options: SpcgOptions::default(),
            resilience: ResilienceOptions::default(),
            device: DeviceSpec::a100(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Why the service could not complete a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// `try_submit` bounced off a full queue — retry later (backpressure).
    QueueFull,
    /// The service is shutting down.
    Closed,
    /// Plan construction failed for the submitted matrix.
    PlanBuild(SparseError),
    /// The solve itself rejected the request (dimension mismatch, …).
    Solver(SolverError),
    /// The admission controller refused the request before any work
    /// started (policy submissions only; see [`SolveRequest::policy`]).
    Shed(ShedReason),
    /// The caller cancelled the queued request ([`Ticket::cancel`]) before
    /// a worker picked it up; no solve work was spent on it.
    Cancelled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full, request rejected (backpressure)"),
            ServeError::Closed => write!(f, "service closed"),
            ServeError::PlanBuild(e) => write!(f, "plan construction failed: {e}"),
            ServeError::Solver(e) => write!(f, "solver rejected request: {e}"),
            ServeError::Shed(reason) => write!(f, "request shed at admission: {reason}"),
            ServeError::Cancelled => write!(f, "request cancelled while queued"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SolverError> for ServeError {
    fn from(e: SolverError) -> Self {
        ServeError::Solver(e)
    }
}

/// One queued solve request: the system, the right-hand side, and the
/// optional extras that used to be separate `submit_*` entry points.
///
/// ```
/// use spcg_serve::{RequestPolicy, ServiceConfig, SolveRequest, SolveService};
/// use spcg_sparse::generators::poisson_2d;
/// use std::sync::Arc;
///
/// let service: SolveService = SolveService::new(ServiceConfig::default());
/// let a = Arc::new(poisson_2d(12, 12));
/// let b = vec![1.0f64; a.n_rows()];
/// let req = SolveRequest::new(Arc::clone(&a), b).policy(RequestPolicy::default());
/// let out = service.submit(req).unwrap().wait().unwrap();
/// assert!(out.result.converged());
/// ```
///
/// The matrix travels as an `Arc` so same-system clients share one copy
/// (and so a worker can coalesce same-fingerprint requests into a batch).
#[derive(Debug, Clone)]
pub struct SolveRequest<T: Scalar> {
    a: Arc<CsrMatrix<T>>,
    b: Vec<T>,
    policy: Option<RequestPolicy>,
    fault: Option<FaultInjection>,
}

impl<T: Scalar> SolveRequest<T> {
    /// A plain request for `A x = b`: no policy (never shed, no deadline),
    /// no injected fault.
    pub fn new(a: Arc<CsrMatrix<T>>, b: Vec<T>) -> Self {
        Self { a, b, policy: None, fault: None }
    }

    /// Routes the request through admission control under `policy`: it may
    /// be admitted (possibly downgraded to a cheaper [`SolveTier`]) with an
    /// iteration-count watchdog budget, or shed with a typed
    /// [`ServeError::Shed`] before any work starts.
    pub fn policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Injects a deterministic fault, for resilience testing: the request
    /// is solved through the fallback ladder and recovers (or degrades)
    /// without affecting its batchmates.
    pub fn fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// A completed request: the solve result plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServeOutcome<T: Scalar> {
    /// The solve result — bitwise identical to a fresh
    /// [`SpcgPlan::solve`] of the same system.
    pub result: SolveResult<T>,
    /// Present when the request went through the resilient ladder
    /// (breakdown fallback or injected fault).
    pub report: Option<spcg_core::RecoveryReport>,
    /// `true` when the plan came out of the cache.
    pub cache_hit: bool,
    /// Number of right-hand sides in the batch this request rode in
    /// (1 = solved alone).
    pub batch_size: usize,
    /// The execution rung that served this request.
    /// [`SolveTier::Full`] on every non-policy path; a policy submission
    /// reports the (possibly downgraded) tier admission selected.
    pub tier: SolveTier,
}

/// Cancellation state shared between a [`Ticket`] and its queued
/// [`Request`]. The queued-work charge lives here (not on the request) so
/// that exactly one of `Ticket::cancel` and the dequeuing worker releases
/// it: both go through [`CancelCell::take_charge`], an atomic swap to zero.
#[derive(Debug)]
struct CancelCell {
    cancelled: AtomicBool,
    charge_us: AtomicU64,
}

impl CancelCell {
    fn new(charge_us: u64) -> Self {
        Self { cancelled: AtomicBool::new(false), charge_us: AtomicU64::new(charge_us) }
    }

    /// Claims the queued-work charge, exactly once across all callers.
    fn take_charge(&self) -> u64 {
        self.charge_us.swap(0, Ordering::AcqRel)
    }
}

/// Handle to a queued request; redeem with [`Ticket::wait`] or withdraw
/// with [`Ticket::cancel`].
#[derive(Debug)]
pub struct Ticket<T: Scalar> {
    rx: mpsc::Receiver<Result<ServeOutcome<T>, ServeError>>,
    cancel: Arc<CancelCell>,
    service: Weak<Inner<T>>,
}

impl<T: Scalar> Ticket<T> {
    /// Blocks until the worker pool finishes this request.
    pub fn wait(self) -> Result<ServeOutcome<T>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Withdraws the request if it is still queued — best effort: a request
    /// a worker already picked up runs to completion and `cancel` is a
    /// no-op. A successfully cancelled request releases its queued-work
    /// charge immediately (admission stops pricing work that will never
    /// run), is answered with [`ServeError::Cancelled`] when the worker
    /// reaches it, counts in [`ServiceStats::cancelled`], and feeds its
    /// fingerprint's circuit breaker neutrally (a cancelled probe releases
    /// the half-open slot instead of leaking it).
    pub fn cancel(&self) {
        self.cancel.cancelled.store(true, Ordering::Release);
        if let Some(inner) = self.service.upgrade() {
            let charge = self.cancel.take_charge();
            if charge > 0 {
                inner.queued_cost_us.fetch_sub(charge, Ordering::Relaxed);
            }
        }
    }
}

/// Aggregate service counters (see [`SolveService::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted (queued + synchronous). Excludes rejections.
    pub requests: u64,
    /// Requests fully processed (including failed solves).
    pub completed: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Right-hand sides that rode in a batch of size ≥ 2.
    pub batched_rhs: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// `try_submit` rejections (backpressure events).
    pub rejected: u64,
    /// Policy submissions offered to the admission controller. Always
    /// equals `admitted + downgraded + shed + closed_rejected` (the
    /// reconciliation invariant).
    pub offered: u64,
    /// Policy submissions admitted at full quality.
    pub admitted: u64,
    /// Policy submissions admitted at a degraded tier.
    pub downgraded: u64,
    /// Policy submissions refused at admission (occupancy, infeasible
    /// deadline, or quarantined fingerprint). Counts exactly the
    /// requests whose caller saw [`ServeError::Shed`].
    pub shed: u64,
    /// Policy submissions that passed admission but bounced off a
    /// closing queue during shutdown; the caller saw
    /// [`ServeError::Closed`], not a shed, so they are tallied apart
    /// from `shed`. Zero outside shutdown.
    pub closed_rejected: u64,
    /// Requests whose deadline expired while queued (answered with a typed
    /// [`SolverError::DeadlineExceeded`] without consuming solve time).
    pub deadline_expired: u64,
    /// Queued requests withdrawn by [`Ticket::cancel`] before a worker
    /// picked them up (answered with [`ServeError::Cancelled`] without
    /// consuming solve time). Cancellation happens *after* admission, so
    /// these stay inside `admitted + downgraded` (or plain `requests`) and
    /// inside `completed` — the reconciliation invariant is untouched.
    pub cancelled: u64,
    /// Sequence sessions opened ([`SolveService::open_session`]).
    pub sessions_opened: u64,
    /// Steps served through open sessions ([`Session::step`]).
    pub session_steps: u64,
    /// Session steps that refreshed the plan's numeric values in place
    /// (value drift without a cached value twin), as opposed to reusing a
    /// resident plan verbatim.
    pub session_refreshes: u64,
    /// Circuit-breaker transition/rejection tallies, summed over all
    /// fingerprints.
    pub breaker: BreakerCounters,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

/// How a request's outcome feeds its fingerprint's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerRole {
    /// Plain submission: the breaker never hears about it.
    Off,
    /// Policy submission through a closed breaker: the outcome is
    /// reported as a success or failure.
    Report,
    /// Policy submission holding the fingerprint's single half-open
    /// probe slot: the outcome is reported, and a *neutral* outcome (the
    /// request never ran) must release the slot via
    /// [`BreakerRegistry::abort_probe`] or the breaker sticks half-open
    /// and quarantines the fingerprint forever.
    Probe,
}

struct Request<T: Scalar> {
    key: PlanKey,
    a: Arc<CsrMatrix<T>>,
    b: Vec<T>,
    fault: Option<FaultInjection>,
    /// Absolute wall-clock deadline; a worker re-derives the iteration
    /// budget from whatever time remains at dequeue.
    deadline: Option<Instant>,
    /// Admission's per-iteration price for this request's tier, µs.
    per_iter_us: f64,
    /// Cancellation flag plus the request's outstanding queued-work charge
    /// (the amount added to the gauge at admission; whoever reaches it
    /// first — the dequeuing worker or [`Ticket::cancel`] — subtracts it
    /// back, exactly once).
    cancel: Arc<CancelCell>,
    /// How this request's outcome feeds the fingerprint's circuit
    /// breaker.
    breaker: BreakerRole,
    reply: mpsc::Sender<Result<ServeOutcome<T>, ServeError>>,
}

struct Inner<T: Scalar> {
    cfg: ServiceConfig,
    cache: PlanCache<T>,
    queue: BoundedQueue<Request<T>>,
    breakers: BreakerRegistry,
    /// Service birth; breaker timestamps are milliseconds since this.
    epoch: Instant,
    /// Estimated µs of solve work sitting in the queue (admission's
    /// queue-wait signal). Incremented on admit, decremented at dequeue.
    queued_cost_us: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_rhs: AtomicU64,
    max_batch: AtomicU64,
    rejected: AtomicU64,
    offered: AtomicU64,
    admitted: AtomicU64,
    downgraded: AtomicU64,
    shed: AtomicU64,
    closed_rejected: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    sessions_opened: AtomicU64,
    session_steps: AtomicU64,
    session_refreshes: AtomicU64,
    /// Monotonic source of [`SessionId`]s.
    next_session: AtomicU64,
}

/// Thread-safe, plan-caching, request-batching solve service. See the
/// module docs for the architecture.
pub struct SolveService<T: Scalar = f64> {
    inner: Arc<Inner<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Scalar + Send + Sync + 'static> SolveService<T> {
    /// Starts the worker pool and returns the service handle. The handle
    /// is `Send + Sync`; share it across client threads directly or behind
    /// an `Arc`.
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cache: PlanCache::new(cfg.cache),
            queue: BoundedQueue::new(cfg.queue_capacity),
            breakers: BreakerRegistry::new(cfg.breaker),
            epoch: Instant::now(),
            queued_cost_us: AtomicU64::new(0),
            cfg,
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_rhs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            downgraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            closed_rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            session_steps: AtomicU64::new(0),
            session_refreshes: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers: handles }
    }

    /// The plan for `a`, built on this thread and cached if absent.
    /// Exactly one cache lookup is counted (a hit or a miss), so
    /// `hits + misses` always equals the number of requests.
    pub fn plan_for(&self, a: &CsrMatrix<T>) -> Result<Arc<SpcgPlan<T>>, ServeError> {
        let key = self.inner.key_for(a);
        self.inner.plan_for(key, a).map(|(plan, _)| plan)
    }

    /// Synchronous cached solve on the calling thread.
    pub fn solve(&self, a: &CsrMatrix<T>, b: &[T]) -> Result<ServeOutcome<T>, ServeError> {
        self.solve_probed(a, b, &mut spcg_probe::NoProbe)
    }

    /// [`solve`](SolveService::solve) with an observability [`Probe`]: the
    /// request is bracketed in `Span::ServeRequest` and cache traffic is
    /// reported through the `serve.cache.*` counters.
    pub fn solve_probed<P: Probe>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        probe: &mut P,
    ) -> Result<ServeOutcome<T>, ServeError> {
        probe.span_begin(Span::ServeRequest);
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.inner.key_for(a);
        let out = (|| {
            let (plan, cache_hit) = self.inner.plan_for(key, a)?;
            probe.counter(
                if cache_hit { Counter::ServeCacheHit } else { Counter::ServeCacheMiss },
                1,
            );
            let mut ws = plan.make_workspace();
            let result = plan.solve_with_workspace_probed(b, &mut ws, probe)?;
            let (result, report) = if matches!(result.stop, StopReason::Breakdown(_)) {
                let rs = plan.solve_resilient_with_workspace_probed(
                    b,
                    &self.inner.cfg.resilience,
                    &mut ws,
                    probe,
                )?;
                (rs.result, Some(rs.report))
            } else {
                (result, None)
            };
            Ok(ServeOutcome { result, report, cache_hit, batch_size: 1, tier: SolveTier::Full })
        })();
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        probe.span_end(Span::ServeRequest);
        out
    }

    /// The zero-allocation hot path: fingerprint, cache hit, and an
    /// in-place solve through the caller's workspace. Once the plan is
    /// cached and `ws` is warm, a call performs no heap allocation; the
    /// iterate is left in `ws.solution()`. A cache miss builds (and
    /// caches) the plan first — that cold path allocates, exactly once per
    /// fingerprint.
    pub fn solve_in_place(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
    ) -> Result<SolveStats, ServeError> {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.inner.key_for(a);
        let (plan, _) = self.inner.plan_for(key, a)?;
        let stats = plan.solve_in_place(b, ws)?;
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    /// Queues a [`SolveRequest`] for the worker pool, blocking while the
    /// queue is full (a request carrying a [`RequestPolicy`] never blocks —
    /// admission control already sheds on occupancy).
    pub fn submit(&self, req: SolveRequest<T>) -> Result<Ticket<T>, ServeError> {
        self.submit_inner(req, false, &mut spcg_probe::NoProbe)
    }

    /// Non-blocking [`submit`](SolveService::submit): fails immediately
    /// with [`ServeError::QueueFull`] when the queue is at capacity. This
    /// is the backpressure edge — callers shed or retry.
    pub fn try_submit(&self, req: SolveRequest<T>) -> Result<Ticket<T>, ServeError> {
        self.submit_inner(req, true, &mut spcg_probe::NoProbe)
    }

    /// [`submit`](SolveService::submit) with an observability [`Probe`]:
    /// for policy-bearing requests the admission verdict is reported
    /// through [`Probe::admission`] as it is made.
    pub fn submit_probed<P: Probe>(
        &self,
        req: SolveRequest<T>,
        probe: &mut P,
    ) -> Result<Ticket<T>, ServeError> {
        self.submit_inner(req, false, probe)
    }

    fn submit_inner<P: Probe>(
        &self,
        req: SolveRequest<T>,
        bounded: bool,
        probe: &mut P,
    ) -> Result<Ticket<T>, ServeError> {
        match req.policy {
            Some(policy) => self.admit_and_enqueue(req.a, req.b, req.fault, policy, probe),
            None => self.enqueue(req.a, req.b, req.fault, bounded),
        }
    }

    /// [`submit`](SolveService::submit) with a deterministic injected
    /// fault.
    #[deprecated(
        since = "0.1.0",
        note = "build a `SolveRequest` and call `submit`: \
                                          `submit(SolveRequest::new(a, b).fault(fault))`"
    )]
    pub fn submit_with_fault(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        fault: FaultInjection,
    ) -> Result<Ticket<T>, ServeError> {
        self.submit(SolveRequest::new(a, b).fault(fault))
    }

    /// [`submit`](SolveService::submit) under a [`RequestPolicy`].
    #[deprecated(
        since = "0.1.0",
        note = "build a `SolveRequest` and call `submit`: \
                                          `submit(SolveRequest::new(a, b).policy(policy))`"
    )]
    pub fn submit_with_policy(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        policy: RequestPolicy,
    ) -> Result<Ticket<T>, ServeError> {
        self.submit(SolveRequest::new(a, b).policy(policy))
    }

    /// [`submit_probed`](SolveService::submit_probed) under a
    /// [`RequestPolicy`].
    #[deprecated(
        since = "0.1.0",
        note = "build a `SolveRequest` and call `submit_probed`: \
                                          `submit_probed(SolveRequest::new(a, b).policy(policy), \
                                          probe)`"
    )]
    pub fn submit_with_policy_probed<P: Probe>(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        policy: RequestPolicy,
        probe: &mut P,
    ) -> Result<Ticket<T>, ServeError> {
        self.submit_probed(SolveRequest::new(a, b).policy(policy), probe)
    }

    /// The policy path: the admission controller prices the request
    /// against the gpusim cost model and current load, then **admits** it
    /// (possibly **downgraded** to a cheaper [`SolveTier`]) with an
    /// iteration-count watchdog budget, or **sheds** it with a typed
    /// [`ServeError::Shed`] before any work starts. Fingerprints
    /// quarantined by the circuit breaker are shed immediately.
    fn admit_and_enqueue<P: Probe>(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        fault: Option<FaultInjection>,
        policy: RequestPolicy,
        probe: &mut P,
    ) -> Result<Ticket<T>, ServeError> {
        let inner = &self.inner;
        inner.offered.fetch_add(1, Ordering::Relaxed);
        let base = inner.key_for(a.as_ref());
        let queue_depth = inner.queue.len();
        let report = |probe: &mut P, verdict: AdmissionVerdict, est_cost_us: f64| {
            probe.admission(AdmissionEvent {
                verdict,
                priority: policy.priority.tag(),
                queue_depth,
                est_cost_us,
            });
        };

        // Gate 0: the circuit breaker. An open fingerprint is refused
        // before pricing — the whole point is to stop spending on it. A
        // `Probe` decision claims the fingerprint's single half-open
        // slot, so every later bail-out on this path must release it
        // (`abort_probe`); a leaked slot would pin the breaker half-open
        // and quarantine the fingerprint permanently.
        let breaker_role = match inner.breakers.admit(&base, inner.now_ms()) {
            BreakerDecision::Quarantined { .. } => {
                inner.shed.fetch_add(1, Ordering::Relaxed);
                report(probe, AdmissionVerdict::Shed, 0.0);
                return Err(ServeError::Shed(ShedReason::Quarantined));
            }
            BreakerDecision::Probe => BreakerRole::Probe,
            BreakerDecision::Allow => BreakerRole::Report,
        };

        let costs = inner.tier_costs(&base, a.as_ref());
        let load = LoadSnapshot {
            queue_depth,
            queue_capacity: inner.cfg.queue_capacity,
            queued_cost_us: inner.queued_cost_us.load(Ordering::Relaxed) as f64,
            workers: inner.cfg.workers.max(1),
        };
        // The decision's iteration budget is advisory here: the worker
        // re-derives it from the wall clock at dequeue, so time actually
        // spent queued tightens the watchdog instead of being ignored.
        let tier = match decide(&policy, &load, &costs) {
            Admission::Shed(reason) => {
                if breaker_role == BreakerRole::Probe {
                    inner.breakers.abort_probe(&base, inner.now_ms());
                }
                inner.shed.fetch_add(1, Ordering::Relaxed);
                report(
                    probe,
                    AdmissionVerdict::Shed,
                    costs.at(SolveTier::Full).expected_total_us(),
                );
                return Err(ServeError::Shed(reason));
            }
            Admission::Admit { tier, .. } => tier,
        };

        let cost = costs.at(tier);
        let cost_us = cost.expected_total_us().max(0.0) as u64;
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(CancelCell::new(cost_us));
        let req = Request {
            key: base.with_tier(tier),
            a,
            b,
            fault,
            deadline: policy.deadline.map(|d| Instant::now() + d),
            per_iter_us: cost.per_iteration_us,
            cancel: Arc::clone(&cancel),
            breaker: breaker_role,
            reply: tx,
        };
        // Charge the queued-work gauge *before* the request becomes
        // visible: a worker that dequeues it subtracts the same amount,
        // and charging after `try_push` would let that subtract land
        // first, wrapping the unsigned gauge to ~u64::MAX and shedding
        // every deadline-bearing request as infeasible until the add
        // caught up.
        inner.queued_cost_us.fetch_add(cost_us, Ordering::Relaxed);
        match inner.queue.try_push(req) {
            Ok(()) => {
                inner.requests.fetch_add(1, Ordering::Relaxed);
                let (verdict, stat) = if tier == SolveTier::Full {
                    (AdmissionVerdict::Admitted, &inner.admitted)
                } else {
                    (AdmissionVerdict::Downgraded, &inner.downgraded)
                };
                stat.fetch_add(1, Ordering::Relaxed);
                report(probe, verdict, cost.expected_total_us());
                Ok(Ticket { rx, cancel, service: Arc::downgrade(inner) })
            }
            Err(e) => {
                inner.queued_cost_us.fetch_sub(cancel.take_charge(), Ordering::Relaxed);
                if breaker_role == BreakerRole::Probe {
                    inner.breakers.abort_probe(&base, inner.now_ms());
                }
                match e {
                    // The occupancy gate raced a filling queue: that is
                    // still an admission shed, kept inside the
                    // reconciliation invariant.
                    PushError::Full(_) => {
                        inner.shed.fetch_add(1, Ordering::Relaxed);
                        report(probe, AdmissionVerdict::Shed, cost.expected_total_us());
                        Err(ServeError::Shed(ShedReason::Occupancy))
                    }
                    // A closing queue is shutdown, not load: the caller
                    // sees `Closed`, so the request is tallied apart from
                    // `shed` (which counts only refusals the client
                    // observed as sheds) and no admission verdict is
                    // emitted — the controller said admit; the service
                    // lifecycle overrode it.
                    PushError::Closed(_) => {
                        inner.closed_rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Closed)
                    }
                }
            }
        }
    }

    fn enqueue(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        fault: Option<FaultInjection>,
        bounded: bool,
    ) -> Result<Ticket<T>, ServeError> {
        let key = self.inner.key_for(a.as_ref());
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(CancelCell::new(0));
        let req = Request {
            key,
            a,
            b,
            fault,
            deadline: None,
            per_iter_us: 0.0,
            cancel: Arc::clone(&cancel),
            breaker: BreakerRole::Off,
            reply: tx,
        };
        let pushed =
            if bounded { self.inner.queue.try_push(req) } else { self.inner.queue.push(req) };
        match pushed {
            Ok(()) => {
                self.inner.requests.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx, cancel, service: Arc::downgrade(&self.inner) })
            }
            Err(PushError::Full(_)) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Aggregate counters. Once clients and workers are quiescent,
    /// `cache.hits + cache.misses` equals the number of accepted
    /// *plan-backed* requests — every such request performs exactly one
    /// counted cache lookup. Jacobi-tier requests never touch the plan
    /// cache, and `offered == admitted + downgraded + shed +
    /// closed_rejected` always holds for policy submissions (the
    /// reconciliation invariant; the last term is nonzero only during
    /// shutdown).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            batched_rhs: self.inner.batched_rhs.load(Ordering::Relaxed),
            max_batch: self.inner.max_batch.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            offered: self.inner.offered.load(Ordering::Relaxed),
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            downgraded: self.inner.downgraded.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            closed_rejected: self.inner.closed_rejected.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            sessions_opened: self.inner.sessions_opened.load(Ordering::Relaxed),
            session_steps: self.inner.session_steps.load(Ordering::Relaxed),
            session_refreshes: self.inner.session_refreshes.load(Ordering::Relaxed),
            breaker: self.inner.breakers.counters(),
            cache: self.inner.cache.stats(),
        }
    }

    /// Opens a sequence [`Session`] for the evolving system `a`: the plan
    /// comes from (or enters) the cache, and the session keeps a persistent
    /// workspace so later [`step`](Session::step)s warm-start from the
    /// previous solution. Counts one cache lookup like any plan-backed
    /// request.
    pub fn open_session(&self, a: &CsrMatrix<T>) -> Result<Session<T>, ServeError> {
        self.open_session_probed(a, &mut spcg_probe::NoProbe)
    }

    /// [`open_session`](SolveService::open_session) with an observability
    /// [`Probe`] (`serve.session.opened`, `serve.cache.*`).
    pub fn open_session_probed<P: Probe>(
        &self,
        a: &CsrMatrix<T>,
        probe: &mut P,
    ) -> Result<Session<T>, ServeError> {
        let key = self.inner.key_for(a);
        let (plan, cache_hit) = self.inner.plan_for(key, a)?;
        probe.counter(if cache_hit { Counter::ServeCacheHit } else { Counter::ServeCacheMiss }, 1);
        probe.counter(Counter::ServeSessionOpened, 1);
        self.inner.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let ws = plan.make_workspace();
        let id = SessionId(self.inner.next_session.fetch_add(1, Ordering::Relaxed));
        Ok(Session { id, inner: Arc::clone(&self.inner), plan, ws, key })
    }

    /// Emits the service counters through the `serve.*` probe vocabulary.
    pub fn emit_counters<P: Probe>(&self, probe: &mut P) {
        let s = self.stats();
        self.inner.cache.emit_counters(probe);
        probe.counter(Counter::ServeBatches, s.batches);
        probe.counter(Counter::ServeBatchedRhs, s.batched_rhs);
        probe.counter(Counter::ServeRejected, s.rejected);
        probe.counter(Counter::ServeAdmitted, s.admitted);
        probe.counter(Counter::ServeDowngraded, s.downgraded);
        probe.counter(Counter::ServeShed, s.shed);
        probe.counter(Counter::ServeBreakerOpened, s.breaker.opened);
        probe.counter(Counter::ServeBreakerHalfOpen, s.breaker.half_opened);
        probe.counter(Counter::ServeBreakerClosed, s.breaker.closed);
        probe.counter(Counter::ServeBreakerRejected, s.breaker.rejected);
        probe.counter(Counter::ServeCancelled, s.cancelled);
        probe.counter(Counter::ServeSessionOpened, s.sessions_opened);
        probe.counter(Counter::ServeSessionStep, s.session_steps);
        probe.counter(Counter::ServeSessionRefresh, s.session_refreshes);
    }

    /// The circuit-breaker state for `a`'s fingerprint under this
    /// service's configuration (diagnostics and tests).
    pub fn breaker_state(&self, a: &CsrMatrix<T>) -> crate::breaker::BreakerState {
        self.inner.breakers.state(&self.inner.key_for(a))
    }

    /// The plan cache (diagnostics and tests).
    pub fn cache(&self) -> &PlanCache<T> {
        &self.inner.cache
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }
}

impl<T: Scalar> Drop for SolveService<T> {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Scalar> std::fmt::Debug for SolveService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("workers", &self.workers.len())
            .field("cache", &self.inner.cache)
            .finish()
    }
}

/// Identifier of an open [`Session`], unique within its service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A sequence of solves against one *evolving* system: the sparsity
/// structure is fixed at [`open_session`](SolveService::open_session) time,
/// the values may drift step to step (a time-varying PDE coefficient, a
/// Newton chain, a timestep-dependent shift).
///
/// Each [`step`](Session::step) compares the incoming matrix's
/// [`MatrixFingerprint`] against the session's current plan:
///
/// * **unchanged values** — the resident plan is reused verbatim; the step
///   is allocation-free end to end (fingerprint, warm PCG through the
///   session workspace);
/// * **drifted values** — the plan cache is consulted under the new value
///   digest (another session over the same trajectory may already have
///   paid the refresh); on a miss, [`SpcgPlan::refresh_values`] re-runs
///   *only* the numeric factorization over the cached analysis and the
///   refreshed plan is cached for value twins;
/// * **changed structure** — the step is refused; open a new session.
///
/// Every step warm-starts PCG from the previous step's solution
/// ([`SpcgPlan::solve_from`]), which is where the iteration savings on
/// slowly-drifting sequences come from. The session is single-threaded by
/// design (`&mut self`); concurrency comes from opening one session per
/// trajectory, with the plan cache sharing refreshed plans across them.
pub struct Session<T: Scalar> {
    id: SessionId,
    inner: Arc<Inner<T>>,
    plan: Arc<SpcgPlan<T>>,
    ws: SolveWorkspace<T>,
    /// Cache key of the *current* plan; `key.fp` carries the structure
    /// digest every step must match and the value digest of the values the
    /// resident plan was factored from.
    key: PlanKey,
}

impl<T: Scalar + Send + Sync + 'static> Session<T> {
    /// This session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The plan currently backing the session (diagnostics and tests).
    pub fn plan(&self) -> &Arc<SpcgPlan<T>> {
        &self.plan
    }

    /// The solution of the most recent [`step`](Session::step) — also the
    /// warm-start seed of the next one. All zeros before the first step.
    pub fn solution(&self) -> &[T] {
        self.ws.solution()
    }

    /// Solves `a x = b` for the current values `a`, reusing or refreshing
    /// the session plan as the value digest dictates and warm-starting from
    /// the previous step's solution. The iterate is left in
    /// [`solution`](Session::solution); the returned stats say how far the
    /// warm start got (`iterations == 0` means the previous solution
    /// already met the tolerance).
    pub fn step(&mut self, a: &CsrMatrix<T>, b: &[T]) -> Result<SolveStats, ServeError> {
        self.step_probed(a, b, &mut spcg_probe::NoProbe)
    }

    /// [`step`](Session::step) with an observability [`Probe`]: steps count
    /// as `serve.session.step`, value-drift refreshes as
    /// `serve.session.refresh` (plus the `plan.refresh` span emitted by
    /// [`SpcgPlan::refresh_values`] itself), and drift-path cache traffic
    /// through `serve.cache.*`.
    pub fn step_probed<P: Probe>(
        &mut self,
        a: &CsrMatrix<T>,
        b: &[T],
        probe: &mut P,
    ) -> Result<SolveStats, ServeError> {
        let fp = MatrixFingerprint::of(a);
        if !fp.same_structure(&self.key.fp) {
            return Err(ServeError::PlanBuild(SparseError::InvalidStructure(format!(
                "session {} is pinned to structure {:016x} ({} rows, {} nnz); step got \
                 {:016x} ({} rows, {} nnz) — open a new session for a new structure",
                self.id.get(),
                self.key.fp.structure,
                self.key.fp.n_rows,
                self.key.fp.nnz,
                fp.structure,
                fp.n_rows,
                fp.nnz,
            ))));
        }
        if fp != self.key.fp {
            let key = PlanKey { fp, ..self.key };
            let plan = match self.inner.cache.get(&key) {
                Some(plan) => {
                    probe.counter(Counter::ServeCacheHit, 1);
                    plan
                }
                None => {
                    probe.counter(Counter::ServeCacheMiss, 1);
                    let refreshed = Arc::new(
                        self.plan.refresh_values_probed(a, probe).map_err(ServeError::PlanBuild)?,
                    );
                    probe.counter(Counter::ServeSessionRefresh, 1);
                    self.inner.session_refreshes.fetch_add(1, Ordering::Relaxed);
                    self.inner.cache.insert(key, Arc::clone(&refreshed));
                    refreshed
                }
            };
            self.plan = plan;
            self.key = key;
        }
        probe.counter(Counter::ServeSessionStep, 1);
        self.inner.session_steps.fetch_add(1, Ordering::Relaxed);
        Ok(self.plan.solve_from_probed(b, &mut self.ws, probe)?)
    }
}

impl<T: Scalar> std::fmt::Debug for Session<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("id", &self.id).field("key", &self.key).finish()
    }
}

impl<T: Scalar> Inner<T> {
    /// The cache key for `a` under this service's configured ordering and
    /// precision policy: services with different `options.ordering` or
    /// `options.precision` build different plans from the same bytes, and
    /// the key keeps those value twins apart.
    fn key_for(&self, a: &CsrMatrix<T>) -> PlanKey {
        PlanKey::of(a, self.cfg.options.ordering, self.cfg.options.precision)
            .with_exec(self.cfg.options.exec)
            .with_precond(self.cfg.options.precond)
    }

    /// Milliseconds since service start — the breaker timebase.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Pipeline options for plans built at `tier`. `Full` is the
    /// configured pipeline; `Light` strips the expensive analysis
    /// (sparsify pass, non-natural ordering, fill levels, the `Auto`
    /// kind search with its probe solves) down to plain ILU(0). `Jacobi`
    /// builds no plan at all and never reaches here.
    fn options_for_tier(&self, tier: SolveTier) -> SpcgOptions {
        match tier {
            SolveTier::Light => self
                .cfg
                .options
                .clone()
                .with_sparsify(None)
                .with_ilu_fill(IluFill::Ilu0)
                .with_precond(PrecondKind::IluSparsified)
                .with_ordering(OrderingKind::Natural),
            _ => self.cfg.options.clone(),
        }
    }

    /// Expected PCG iteration counts per tier for an `n`-row system.
    /// √n tracks CG's √κ(A) on the 2D-grid family the service is
    /// benchmarked on; the diagonal preconditioner is weaker than ILU by
    /// roughly the paper's observed 3× on the same family.
    fn expected_iterations(n: usize) -> (usize, usize) {
        let ilu = (n as f64).sqrt().ceil().max(1.0) as usize;
        (ilu, ilu.saturating_mul(3))
    }

    /// Admission's per-tier price table for one request. A cached plan is
    /// priced exactly ([`plan_iteration_cost`]) with zero build cost; an
    /// absent plan is priced from structure alone
    /// ([`estimate_from_structure`]). Pricing uses [`PlanCache::peek`], so
    /// a request that is subsequently shed leaves no trace in the cache
    /// tallies or LRU order.
    fn tier_costs(&self, base: &PlanKey, a: &CsrMatrix<T>) -> TierCosts {
        let device = &self.cfg.device;
        let (n, nnz) = (a.n_rows(), a.nnz());
        let vb = value_bytes_of::<T>();
        let (ilu_iters, jacobi_iters) = Self::expected_iterations(n);
        let est = estimate_from_structure(device, n, nnz, vb);

        let priced = |key: &PlanKey, build_us: f64| match self.cache.peek(key) {
            Some(plan) => TierCost {
                build_us: 0.0,
                per_iteration_us: plan_iteration_cost(device, &plan).total_us(),
                expected_iterations: ilu_iters,
            },
            None => TierCost {
                build_us,
                per_iteration_us: est.per_iteration_us,
                expected_iterations: ilu_iters,
            },
        };
        let full = priced(base, est.build_us);
        // Light skips the sparsify scan; the rest of the build estimate
        // (inspector + numeric factorization) stands.
        let light = priced(
            &base.with_tier(SolveTier::Light),
            (est.build_us - spcg_gpusim::sparsify_cost_us(nnz)).max(0.0),
        );
        // Jacobi: SpMV + diagonal scale + BLAS-1 per iteration, one
        // diagonal-extraction pass to build, no trisolves anywhere.
        let spmv_us = spmv_cost(device, a).time_us;
        let diag_us = elementwise_cost::<T>(device, n, 3.0).time_us;
        let blas_us = 2.0 * dot_cost::<T>(device, n).time_us
            + 3.0 * elementwise_cost::<T>(device, n, 3.0).time_us;
        let jacobi = TierCost {
            build_us: elementwise_cost::<T>(device, n, 2.0).time_us,
            per_iteration_us: spmv_us + diag_us + blas_us,
            expected_iterations: jacobi_iters,
        };
        TierCosts { full, light, jacobi }
    }

    /// Cache lookup, building and inserting on a miss. Exactly one lookup
    /// is counted per call. Two threads racing the same cold key may both
    /// build; both results are numerically identical (the whole pipeline
    /// is deterministic), the second insert wins, and correctness is
    /// unaffected — the duplicate work is bounded by the race. The key's
    /// tier selects the build options, so a degraded key builds (and
    /// caches) the cheaper plan.
    fn plan_for(
        &self,
        key: PlanKey,
        a: &CsrMatrix<T>,
    ) -> Result<(Arc<SpcgPlan<T>>, bool), ServeError> {
        if let Some(plan) = self.cache.get(&key) {
            return Ok((plan, true));
        }
        let opts = self.options_for_tier(key.tier);
        let plan = Arc::new(SpcgPlan::build(a, &opts).map_err(ServeError::PlanBuild)?);
        self.cache.insert(key, Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Solves one right-hand side: planned path first (under the
    /// iteration-count watchdog), resilient ladder on breakdown (or
    /// straight to the ladder when a fault is injected). The watchdog
    /// applies to the planned attempt; a ladder recovery runs to
    /// completion — it is already the degraded path, and killing it would
    /// waste the planned iterations it salvages.
    fn solve_one(
        &self,
        plan: &SpcgPlan<T>,
        b: &[T],
        fault: Option<FaultInjection>,
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
    ) -> Result<(SolveResult<T>, Option<spcg_core::RecoveryReport>), ServeError> {
        if let Some(fault) = fault {
            let ropts = ResilienceOptions { fault: Some(fault), ..self.cfg.resilience.clone() };
            let rs = plan.solve_resilient_with_workspace(b, &ropts, ws)?;
            return Ok((rs.result, Some(rs.report)));
        }
        let result = plan.solve_with_workspace_deadline_probed(
            b,
            deadline_iters,
            ws,
            &mut spcg_probe::NoProbe,
        )?;
        if matches!(result.stop, StopReason::Breakdown(_)) {
            let rs = plan.solve_resilient_with_workspace(b, &self.cfg.resilience, ws)?;
            return Ok((rs.result, Some(rs.report)));
        }
        Ok((result, None))
    }

    /// Reports one policy request's outcome to its fingerprint's breaker.
    /// Success = a converged result (ladder recoveries included); failure
    /// = an unconverged final answer or a deadline blown *mid-solve*. A
    /// deadline that expired with zero iterations run — spent entirely in
    /// the queue, or admitted with a zero budget — says nothing about the
    /// matrix (it is a load problem, not a fingerprint problem), so it is
    /// **neutral**: no failure is recorded, and if this request held the
    /// half-open probe slot the slot is released instead of leaked.
    fn record_breaker_outcome(
        &self,
        req_key: &PlanKey,
        role: BreakerRole,
        outcome: &Result<ServeOutcome<T>, ServeError>,
    ) {
        if role == BreakerRole::Off {
            return;
        }
        let base = req_key.with_tier(SolveTier::Full);
        match outcome {
            Ok(out) if out.result.converged() => self.breakers.record_success(&base),
            // A cancellation, like a queue-expired deadline, says nothing
            // about the matrix: neutral, and a held probe slot is
            // released instead of leaked.
            Err(ServeError::Cancelled)
            | Err(ServeError::Solver(SolverError::DeadlineExceeded { iterations: 0, .. })) => {
                if role == BreakerRole::Probe {
                    self.breakers.abort_probe(&base, self.now_ms());
                }
            }
            _ => self.breakers.record_failure(&base, self.now_ms()),
        }
    }
}

/// One worker: pop a request, wait out the admission window, coalesce every
/// same-fingerprint request still queued, solve the batch sequentially
/// through one reused workspace, reply per request.
///
/// The batch is solved on *this* thread on purpose: pool-level parallelism
/// comes from running many workers, and keeping each batch single-threaded
/// makes worker count the only parallelism knob (no nested fan-out
/// oversubscribing the machine) while preserving bitwise-identical results.
fn worker_loop<T: Scalar + Send + Sync>(inner: &Inner<T>) {
    while let Some(first) = inner.queue.pop() {
        if inner.cfg.batch_limit > 1 && !inner.cfg.batch_window.is_zero() {
            std::thread::sleep(inner.cfg.batch_window);
        }
        let key = first.key;
        let mut batch = vec![first];
        if inner.cfg.batch_limit > 1 {
            batch.extend(
                inner.queue.drain_matching(|r| r.key == key, inner.cfg.batch_limit - batch.len()),
            );
        }
        // The queued-work gauge sheds this batch the moment it leaves the
        // queue — admission must not double-count work a worker already
        // owns. `take_charge` is exactly-once against a racing
        // `Ticket::cancel`: a cancelled request whose charge was already
        // released contributes zero here.
        let batch_cost: u64 = batch.iter().map(|r| r.cancel.take_charge()).sum();
        if batch_cost > 0 {
            inner.queued_cost_us.fetch_sub(batch_cost, Ordering::Relaxed);
        }
        let size = batch.len();
        inner.batches.fetch_add(1, Ordering::Relaxed);
        inner.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        if size > 1 {
            inner.batched_rhs.fetch_add(size as u64, Ordering::Relaxed);
        }

        if key.tier == SolveTier::Jacobi {
            serve_jacobi_batch(inner, batch, size);
            continue;
        }

        // One counted cache lookup per request in the batch: the leader
        // resolves (or builds) the plan, coalesced followers re-look it up
        // — by then resident, so they tally as the cache hits they
        // logically are, and `hits + misses` keeps equaling plan-backed
        // requests.
        let leader = inner.plan_for(key, batch[0].a.as_ref());
        let (plan, leader_hit) = match leader {
            Ok(pair) => pair,
            Err(e) => {
                for req in batch {
                    inner.record_breaker_outcome(&req.key, req.breaker, &Err(e.clone()));
                    // Count before replying: a client that sees the reply
                    // must also see the request as completed in stats.
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(e.clone()));
                }
                continue;
            }
        };

        let mut ws = plan.make_workspace();
        for (i, req) in batch.into_iter().enumerate() {
            let cache_hit = if i == 0 { leader_hit } else { inner.cache.get(&key).is_some() };
            let reply = if cancelled(inner, &req) {
                Err(ServeError::Cancelled)
            } else {
                match deadline_budget(&req) {
                    None => Err(expired_in_queue(inner)),
                    Some(budget) => inner.solve_one(&plan, &req.b, req.fault, budget, &mut ws).map(
                        |(result, report)| ServeOutcome {
                            result,
                            report,
                            cache_hit,
                            batch_size: size,
                            tier: req.key.tier,
                        },
                    ),
                }
            };
            inner.record_breaker_outcome(&req.key, req.breaker, &reply);
            // Count before replying (see the error branch above).
            inner.completed.fetch_add(1, Ordering::Relaxed);
            let _ = req.reply.send(reply);
        }
    }
}

/// `true` when `req`'s ticket cancelled it while it sat in the queue; also
/// tallies the cancellation (the stat counts requests actually skipped, not
/// `cancel` calls that lost the race to a worker).
fn cancelled<T: Scalar>(inner: &Inner<T>, req: &Request<T>) -> bool {
    let hit = req.cancel.cancelled.load(Ordering::Acquire);
    if hit {
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// The iteration budget left for `req` at this instant, or `None` when its
/// deadline already passed in the queue — the caller answers with a typed
/// error instead of starting a doomed solve.
fn deadline_budget<T: Scalar>(req: &Request<T>) -> Option<usize> {
    match req.deadline {
        None => Some(usize::MAX),
        Some(deadline) => {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let remaining_us = deadline.duration_since(now).as_secs_f64() * 1e6;
            Some(iteration_budget(remaining_us, req.per_iter_us))
        }
    }
}

/// The typed reply for a request whose deadline expired while queued: zero
/// iterations were spent and no residual was ever computed.
fn expired_in_queue<T: Scalar>(inner: &Inner<T>) -> ServeError {
    inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
    ServeError::Solver(SolverError::DeadlineExceeded {
        best_residual: f64::INFINITY,
        iterations: 0,
    })
}

/// Serves one coalesced batch at the Jacobi tier: no plan, no cache entry
/// — a diagonal preconditioner built on the spot and plain PCG per
/// right-hand side, still under the per-request watchdog.
fn serve_jacobi_batch<T: Scalar + Send + Sync>(
    inner: &Inner<T>,
    batch: Vec<Request<T>>,
    size: usize,
) {
    let a = Arc::clone(&batch[0].a);
    let precond = match JacobiPreconditioner::new(a.as_ref()) {
        Ok(p) => p,
        Err(e) => {
            for req in batch {
                let err = ServeError::PlanBuild(e.clone());
                inner.record_breaker_outcome(&req.key, req.breaker, &Err(err.clone()));
                inner.completed.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.send(Err(err));
            }
            return;
        }
    };
    let mut ws = SolveWorkspace::for_preconditioner(a.n_rows(), &precond);
    for req in batch {
        let reply = if cancelled(inner, &req) {
            Err(ServeError::Cancelled)
        } else {
            match deadline_budget(&req) {
                None => Err(expired_in_queue(inner)),
                Some(budget) => {
                    let config = inner.cfg.options.solver.clone().with_deadline_iters(budget);
                    pcg_with_workspace(a.as_ref(), &precond, &req.b, &config, &mut ws)
                        .map(|result| ServeOutcome {
                            result,
                            report: None,
                            cache_hit: false,
                            batch_size: size,
                            tier: SolveTier::Jacobi,
                        })
                        .map_err(ServeError::from)
                }
            }
        };
        inner.record_breaker_outcome(&req.key, req.breaker, &reply);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        let _ = req.reply.send(reply);
    }
}

#[allow(unused)]
fn _assert_service_is_sync<T: Scalar + Send + Sync + 'static>() {
    fn assert_sync<S: Send + Sync>() {}
    assert_sync::<SolveService<T>>();
    assert_sync::<Arc<SpcgPlan<T>>>();
}
