//! The solve service: plan key (fingerprint + ordering) → cached plan →
//! (batched) solve.
//!
//! [`SolveService`] fronts the whole SPCG pipeline behind two entry
//! styles:
//!
//! * **Synchronous** — [`solve`](SolveService::solve) /
//!   [`solve_in_place`](SolveService::solve_in_place) run on the calling
//!   thread. The in-place variant is the zero-allocation hot path: once a
//!   plan is cached and the caller's workspace is warm, a request performs
//!   no heap allocation at all (fingerprint, cache hit, PCG loop included).
//! * **Queued** — [`submit`](SolveService::submit) /
//!   [`try_submit`](SolveService::try_submit) hand the request to a
//!   `std::thread` worker pool behind a bounded queue (`try_submit` is the
//!   backpressure edge: it fails fast with [`ServeError::QueueFull`]).
//!   A worker that dequeues a request waits out a small **admission
//!   window**, then drains every same-fingerprint request still queued and
//!   solves them as one batch through a single reused workspace — the
//!   cross-request analogue of [`SpcgPlan::solve_many`].
//!
//! Requests fail independently: a right-hand side that breaks down falls
//! back to the resilient ladder ([`SpcgPlan::solve_resilient`]) without
//! touching its batchmates, and a poisoned request (injected fault) recovers
//! or degrades alone.
//!
//! Numerics are identical on every path: a batched, cached, multi-worker
//! solve returns bit-for-bit the vector a fresh single-threaded
//! [`SpcgPlan::solve`] would (asserted by this crate's tests).

use crate::cache::{CacheConfig, CacheStats, PlanCache, PlanKey};
use crate::queue::{BoundedQueue, PushError};
use spcg_core::{FaultInjection, ResilienceOptions, SpcgOptions, SpcgPlan};
use spcg_probe::{Counter, Probe, Span};
use spcg_solver::{SolveResult, SolveStats, SolveWorkspace, SolverError, StopReason};
use spcg_sparse::{CsrMatrix, Scalar, SparseError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`SolveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool (min 1).
    pub workers: usize,
    /// Bounded queue depth; `try_submit` fails once it is full.
    pub queue_capacity: usize,
    /// How long a worker waits after dequeuing a request for
    /// same-fingerprint requests to arrive before solving. Zero disables
    /// coalescing delay (the worker still drains whatever already queued).
    pub batch_window: Duration,
    /// Maximum right-hand sides coalesced into one batch.
    pub batch_limit: usize,
    /// Plan-cache sizing.
    pub cache: CacheConfig,
    /// Pipeline options used to build every plan.
    pub options: SpcgOptions,
    /// Ladder options for breakdown fallback (`fault` is overridden
    /// per-request; see [`SolveService::submit_with_fault`]).
    pub resilience: ResilienceOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            batch_window: Duration::from_micros(200),
            batch_limit: 32,
            cache: CacheConfig::default(),
            options: SpcgOptions::default(),
            resilience: ResilienceOptions::default(),
        }
    }
}

/// Why the service could not complete a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// `try_submit` bounced off a full queue — retry later (backpressure).
    QueueFull,
    /// The service is shutting down.
    Closed,
    /// Plan construction failed for the submitted matrix.
    PlanBuild(SparseError),
    /// The solve itself rejected the request (dimension mismatch, …).
    Solver(SolverError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full, request rejected (backpressure)"),
            ServeError::Closed => write!(f, "service closed"),
            ServeError::PlanBuild(e) => write!(f, "plan construction failed: {e}"),
            ServeError::Solver(e) => write!(f, "solver rejected request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SolverError> for ServeError {
    fn from(e: SolverError) -> Self {
        ServeError::Solver(e)
    }
}

/// A completed request: the solve result plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServeOutcome<T: Scalar> {
    /// The solve result — bitwise identical to a fresh
    /// [`SpcgPlan::solve`] of the same system.
    pub result: SolveResult<T>,
    /// Present when the request went through the resilient ladder
    /// (breakdown fallback or injected fault).
    pub report: Option<spcg_core::RecoveryReport>,
    /// `true` when the plan came out of the cache.
    pub cache_hit: bool,
    /// Number of right-hand sides in the batch this request rode in
    /// (1 = solved alone).
    pub batch_size: usize,
}

/// Handle to a queued request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket<T: Scalar> {
    rx: mpsc::Receiver<Result<ServeOutcome<T>, ServeError>>,
}

impl<T: Scalar> Ticket<T> {
    /// Blocks until the worker pool finishes this request.
    pub fn wait(self) -> Result<ServeOutcome<T>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// Aggregate service counters (see [`SolveService::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted (queued + synchronous). Excludes rejections.
    pub requests: u64,
    /// Requests fully processed (including failed solves).
    pub completed: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Right-hand sides that rode in a batch of size ≥ 2.
    pub batched_rhs: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// `try_submit` rejections (backpressure events).
    pub rejected: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

struct Request<T: Scalar> {
    key: PlanKey,
    a: Arc<CsrMatrix<T>>,
    b: Vec<T>,
    fault: Option<FaultInjection>,
    reply: mpsc::Sender<Result<ServeOutcome<T>, ServeError>>,
}

struct Inner<T: Scalar> {
    cfg: ServiceConfig,
    cache: PlanCache<T>,
    queue: BoundedQueue<Request<T>>,
    requests: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_rhs: AtomicU64,
    max_batch: AtomicU64,
    rejected: AtomicU64,
}

/// Thread-safe, plan-caching, request-batching solve service. See the
/// module docs for the architecture.
pub struct SolveService<T: Scalar = f64> {
    inner: Arc<Inner<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Scalar + Send + Sync + 'static> SolveService<T> {
    /// Starts the worker pool and returns the service handle. The handle
    /// is `Send + Sync`; share it across client threads directly or behind
    /// an `Arc`.
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cache: PlanCache::new(cfg.cache),
            queue: BoundedQueue::new(cfg.queue_capacity),
            cfg,
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_rhs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers: handles }
    }

    /// The plan for `a`, built on this thread and cached if absent.
    /// Exactly one cache lookup is counted (a hit or a miss), so
    /// `hits + misses` always equals the number of requests.
    pub fn plan_for(&self, a: &CsrMatrix<T>) -> Result<Arc<SpcgPlan<T>>, ServeError> {
        let key = self.inner.key_for(a);
        self.inner.plan_for(key, a).map(|(plan, _)| plan)
    }

    /// Synchronous cached solve on the calling thread.
    pub fn solve(&self, a: &CsrMatrix<T>, b: &[T]) -> Result<ServeOutcome<T>, ServeError> {
        self.solve_probed(a, b, &mut spcg_probe::NoProbe)
    }

    /// [`solve`](SolveService::solve) with an observability [`Probe`]: the
    /// request is bracketed in `Span::ServeRequest` and cache traffic is
    /// reported through the `serve.cache.*` counters.
    pub fn solve_probed<P: Probe>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        probe: &mut P,
    ) -> Result<ServeOutcome<T>, ServeError> {
        probe.span_begin(Span::ServeRequest);
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.inner.key_for(a);
        let out = (|| {
            let (plan, cache_hit) = self.inner.plan_for(key, a)?;
            probe.counter(
                if cache_hit { Counter::ServeCacheHit } else { Counter::ServeCacheMiss },
                1,
            );
            let mut ws = plan.make_workspace();
            let result = plan.solve_with_workspace_probed(b, &mut ws, probe)?;
            let (result, report) = if matches!(result.stop, StopReason::Breakdown(_)) {
                let rs = plan.solve_resilient_with_workspace_probed(
                    b,
                    &self.inner.cfg.resilience,
                    &mut ws,
                    probe,
                )?;
                (rs.result, Some(rs.report))
            } else {
                (result, None)
            };
            Ok(ServeOutcome { result, report, cache_hit, batch_size: 1 })
        })();
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        probe.span_end(Span::ServeRequest);
        out
    }

    /// The zero-allocation hot path: fingerprint, cache hit, and an
    /// in-place solve through the caller's workspace. Once the plan is
    /// cached and `ws` is warm, a call performs no heap allocation; the
    /// iterate is left in `ws.solution()`. A cache miss builds (and
    /// caches) the plan first — that cold path allocates, exactly once per
    /// fingerprint.
    pub fn solve_in_place(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
    ) -> Result<SolveStats, ServeError> {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.inner.key_for(a);
        let (plan, _) = self.inner.plan_for(key, a)?;
        let stats = plan.solve_in_place(b, ws)?;
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    /// Queues a request for the worker pool, blocking while the queue is
    /// full. The matrix travels as an `Arc` so same-system clients share
    /// one copy.
    pub fn submit(&self, a: Arc<CsrMatrix<T>>, b: Vec<T>) -> Result<Ticket<T>, ServeError> {
        self.enqueue(a, b, None, false)
    }

    /// Non-blocking [`submit`](SolveService::submit): fails immediately
    /// with [`ServeError::QueueFull`] when the queue is at capacity. This
    /// is the backpressure edge — callers shed or retry.
    pub fn try_submit(&self, a: Arc<CsrMatrix<T>>, b: Vec<T>) -> Result<Ticket<T>, ServeError> {
        self.enqueue(a, b, None, true)
    }

    /// [`submit`](SolveService::submit) with a deterministic injected
    /// fault, for resilience testing: the request is solved through the
    /// fallback ladder and recovers (or degrades) without affecting its
    /// batchmates.
    pub fn submit_with_fault(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        fault: FaultInjection,
    ) -> Result<Ticket<T>, ServeError> {
        self.enqueue(a, b, Some(fault), false)
    }

    fn enqueue(
        &self,
        a: Arc<CsrMatrix<T>>,
        b: Vec<T>,
        fault: Option<FaultInjection>,
        bounded: bool,
    ) -> Result<Ticket<T>, ServeError> {
        let key = self.inner.key_for(a.as_ref());
        let (tx, rx) = mpsc::channel();
        let req = Request { key, a, b, fault, reply: tx };
        let pushed =
            if bounded { self.inner.queue.try_push(req) } else { self.inner.queue.push(req) };
        match pushed {
            Ok(()) => {
                self.inner.requests.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(PushError::Full(_)) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Aggregate counters. Once clients and workers are quiescent,
    /// `cache.hits + cache.misses == requests` — every accepted request
    /// performs exactly one counted cache lookup.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            batched_rhs: self.inner.batched_rhs.load(Ordering::Relaxed),
            max_batch: self.inner.max_batch.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            cache: self.inner.cache.stats(),
        }
    }

    /// Emits the service counters through the `serve.*` probe vocabulary.
    pub fn emit_counters<P: Probe>(&self, probe: &mut P) {
        let s = self.stats();
        self.inner.cache.emit_counters(probe);
        probe.counter(Counter::ServeBatches, s.batches);
        probe.counter(Counter::ServeBatchedRhs, s.batched_rhs);
        probe.counter(Counter::ServeRejected, s.rejected);
    }

    /// The plan cache (diagnostics and tests).
    pub fn cache(&self) -> &PlanCache<T> {
        &self.inner.cache
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }
}

impl<T: Scalar> Drop for SolveService<T> {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Scalar> std::fmt::Debug for SolveService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("workers", &self.workers.len())
            .field("cache", &self.inner.cache)
            .finish()
    }
}

impl<T: Scalar> Inner<T> {
    /// The cache key for `a` under this service's configured ordering and
    /// precision policy: services with different `options.ordering` or
    /// `options.precision` build different plans from the same bytes, and
    /// the key keeps those value twins apart.
    fn key_for(&self, a: &CsrMatrix<T>) -> PlanKey {
        PlanKey::of(a, self.cfg.options.ordering, self.cfg.options.precision)
    }

    /// Cache lookup, building and inserting on a miss. Exactly one lookup
    /// is counted per call. Two threads racing the same cold key may both
    /// build; both results are numerically identical (the whole pipeline
    /// is deterministic), the second insert wins, and correctness is
    /// unaffected — the duplicate work is bounded by the race.
    fn plan_for(
        &self,
        key: PlanKey,
        a: &CsrMatrix<T>,
    ) -> Result<(Arc<SpcgPlan<T>>, bool), ServeError> {
        if let Some(plan) = self.cache.get(&key) {
            return Ok((plan, true));
        }
        let plan = Arc::new(SpcgPlan::build(a, &self.cfg.options).map_err(ServeError::PlanBuild)?);
        self.cache.insert(key, Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Solves one right-hand side: planned path first, resilient ladder on
    /// breakdown (or straight to the ladder when a fault is injected).
    fn solve_one(
        &self,
        plan: &SpcgPlan<T>,
        b: &[T],
        fault: Option<FaultInjection>,
        ws: &mut SolveWorkspace<T>,
    ) -> Result<(SolveResult<T>, Option<spcg_core::RecoveryReport>), ServeError> {
        if let Some(fault) = fault {
            let ropts = ResilienceOptions { fault: Some(fault), ..self.cfg.resilience.clone() };
            let rs = plan.solve_resilient_with_workspace(b, &ropts, ws)?;
            return Ok((rs.result, Some(rs.report)));
        }
        let result = plan.solve_with_workspace(b, ws)?;
        if matches!(result.stop, StopReason::Breakdown(_)) {
            let rs = plan.solve_resilient_with_workspace(b, &self.cfg.resilience, ws)?;
            return Ok((rs.result, Some(rs.report)));
        }
        Ok((result, None))
    }
}

/// One worker: pop a request, wait out the admission window, coalesce every
/// same-fingerprint request still queued, solve the batch sequentially
/// through one reused workspace, reply per request.
///
/// The batch is solved on *this* thread on purpose: pool-level parallelism
/// comes from running many workers, and keeping each batch single-threaded
/// makes worker count the only parallelism knob (no nested fan-out
/// oversubscribing the machine) while preserving bitwise-identical results.
fn worker_loop<T: Scalar + Send + Sync>(inner: &Inner<T>) {
    while let Some(first) = inner.queue.pop() {
        if inner.cfg.batch_limit > 1 && !inner.cfg.batch_window.is_zero() {
            std::thread::sleep(inner.cfg.batch_window);
        }
        let key = first.key;
        let mut batch = vec![first];
        if inner.cfg.batch_limit > 1 {
            batch.extend(
                inner.queue.drain_matching(|r| r.key == key, inner.cfg.batch_limit - batch.len()),
            );
        }
        let size = batch.len();
        inner.batches.fetch_add(1, Ordering::Relaxed);
        inner.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        if size > 1 {
            inner.batched_rhs.fetch_add(size as u64, Ordering::Relaxed);
        }

        // One counted cache lookup per request in the batch: the leader
        // resolves (or builds) the plan, coalesced followers re-look it up
        // — by then resident, so they tally as the cache hits they
        // logically are, and `hits + misses` keeps equaling requests.
        let leader = inner.plan_for(key, batch[0].a.as_ref());
        let (plan, leader_hit) = match leader {
            Ok(pair) => pair,
            Err(e) => {
                for req in batch {
                    // Count before replying: a client that sees the reply
                    // must also see the request as completed in stats.
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(e.clone()));
                }
                continue;
            }
        };

        let mut ws = plan.make_workspace();
        for (i, req) in batch.into_iter().enumerate() {
            let cache_hit = if i == 0 { leader_hit } else { inner.cache.get(&key).is_some() };
            let reply =
                inner.solve_one(&plan, &req.b, req.fault, &mut ws).map(|(result, report)| {
                    ServeOutcome { result, report, cache_hit, batch_size: size }
                });
            // Count before replying (see the error branch above).
            inner.completed.fetch_add(1, Ordering::Relaxed);
            let _ = req.reply.send(reply);
        }
    }
}

#[allow(unused)]
fn _assert_service_is_sync<T: Scalar + Send + Sync + 'static>() {
    fn assert_sync<S: Send + Sync>() {}
    assert_sync::<SolveService<T>>();
    assert_sync::<Arc<SpcgPlan<T>>>();
}
