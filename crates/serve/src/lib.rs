//! # spcg-serve
//!
//! Thread-safe solve *service* over the SPCG pipeline: the layer that
//! amortizes one system's analysis across many callers, the way
//! [`SpcgPlan`](spcg_core::SpcgPlan) amortizes it across many right-hand
//! sides within one caller.
//!
//! Six pieces, each its own module:
//!
//! * [`cache`] — a sharded, byte-bounded LRU of `Arc<SpcgPlan>`s keyed by
//!   [`MatrixFingerprint`](spcg_sparse::MatrixFingerprint) (structure hash
//!   + value digest, computed in `spcg-sparse`);
//! * [`queue`] — a bounded MPMC queue (`std` only) with backpressure and
//!   same-fingerprint draining;
//! * [`policy`] — per-request [`RequestPolicy`] (deadline, priority,
//!   quality floor) and the [`SolveTier`] degradation ladder;
//! * [`admission`] — the pure admit/downgrade/shed decision over a load
//!   snapshot and gpusim-priced per-tier cost estimates;
//! * [`breaker`] — a per-fingerprint circuit breaker quarantining systems
//!   that repeatedly break down or blow their deadlines;
//! * [`service`] — the [`SolveService`]: synchronous cached solves on the
//!   caller's thread (including a zero-allocation in-place path), a
//!   worker pool that coalesces same-fingerprint requests into batches,
//!   falling back to the resilient ladder per right-hand side on
//!   breakdown, and sequence [`Session`]s for
//!   time-varying systems (value-only plan refresh + warm-started PCG).
//!   Every queued request is a [`SolveRequest`];
//!   one carrying a [`RequestPolicy`] passes through admission control
//!   and runs under an iteration-count deadline watchdog enforced inside
//!   the PCG guard path, and any queued request can be withdrawn via
//!   [`Ticket::cancel`](service::Ticket::cancel) until a worker picks it
//!   up.
//!
//! ## Quick start
//!
//! ```
//! use spcg_serve::{ServiceConfig, SolveRequest, SolveService};
//! use spcg_sparse::generators::poisson_2d;
//! use std::sync::Arc;
//!
//! let service: SolveService = SolveService::new(ServiceConfig::default());
//! let a = Arc::new(poisson_2d(16, 16));
//! let b = vec![1.0f64; a.n_rows()];
//!
//! // Queued: goes through the worker pool (and may batch with friends).
//! let ticket = service.submit(SolveRequest::new(Arc::clone(&a), b.clone())).unwrap();
//! let queued = ticket.wait().unwrap();
//! assert!(queued.result.converged());
//!
//! // Synchronous: same numerics, this thread, plan now cached.
//! let sync = service.solve(&a, &b).unwrap();
//! assert!(sync.cache_hit);
//! assert_eq!(sync.result.x, queued.result.x); // bitwise identical
//!
//! // Sequence session: fixed structure, drifting values, warm starts.
//! let mut session = service.open_session(&a).unwrap();
//! let first = session.step(&a, &b).unwrap();
//! let drifted = a.map_values(|v| v * 1.001);
//! let second = session.step(&drifted, &b).unwrap();
//! assert!(second.iterations <= first.iterations); // warm start pays
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod policy;
pub mod queue;
pub mod service;

pub use admission::{decide, Admission, LoadSnapshot, ShedReason, TierCost, TierCosts};
pub use breaker::{
    BreakerConfig, BreakerCounters, BreakerDecision, BreakerRegistry, BreakerState, CircuitBreaker,
};
pub use cache::{CacheConfig, CacheStats, PlanCache, PlanKey};
pub use policy::{Priority, RequestPolicy, SolveTier};
pub use queue::{BoundedQueue, PushError};
pub use service::{
    ServeError, ServeOutcome, ServiceConfig, ServiceStats, Session, SessionId, SolveRequest,
    SolveService, Ticket,
};
