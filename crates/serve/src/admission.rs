//! Admission control: decide **admit / downgrade / shed** before any work
//! starts.
//!
//! The controller is a pure function ([`decide`]) over three inputs:
//!
//! 1. the request's [`RequestPolicy`] (deadline, priority, quality floor);
//! 2. a [`LoadSnapshot`] of the service (queue depth/capacity, estimated
//!    microseconds of work already queued, worker count);
//! 3. a [`TierCosts`] table — gpusim-priced per-tier cost estimates (a
//!    cache hit prices the actual plan, a miss prices the structure; see
//!    [`spcg_gpusim::estimate_from_structure`]).
//!
//! Two gates run in order:
//!
//! * **Occupancy** — priorities map to *nested* queue-occupancy ceilings
//!   (`Low` < 50%, `Normal` < 75%, `High` ≤ 100%). Nesting makes shedding
//!   provably monotone in priority: at any snapshot, if a higher class is
//!   shed then every lower class is shed too (property-tested below). No
//!   high-priority request is ever rejected while a low-priority one would
//!   have been admitted.
//! * **Deadline feasibility** — estimated completion = queue wait + plan
//!   build (first sight only) + expected iterations × per-iteration cost,
//!   walked down the tier ladder from `Full` until it fits the deadline.
//!   A fitting cheaper tier is a *downgrade*; nothing fitting above the
//!   policy's `min_quality` floor sheds the request — except `High`
//!   priority, which is admitted at the floor with whatever watchdog
//!   budget remains rather than shed on an estimate.
//!
//! The decision also fixes the solve's **iteration budget**: the time left
//! after queue wait and build is converted to an iteration count via
//! [`spcg_gpusim::iteration_budget`], enforced inside the PCG guard path
//! as a single integer comparison per iteration.

use crate::policy::{Priority, RequestPolicy, SolveTier};
use spcg_gpusim::iteration_budget;

/// Point-in-time view of service load, taken at submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSnapshot {
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Estimated microseconds of solve work already queued ahead of this
    /// request.
    pub queued_cost_us: f64,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl LoadSnapshot {
    /// Expected microseconds this request waits before a worker picks it
    /// up: the queued work spread across the pool.
    pub fn expected_wait_us(&self) -> f64 {
        self.queued_cost_us / self.workers.max(1) as f64
    }

    /// Queue fullness in `[0, 1]` (1 = at capacity).
    pub fn occupancy(&self) -> f64 {
        self.queue_depth as f64 / self.queue_capacity.max(1) as f64
    }
}

/// Cost estimate for serving one request at one tier, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCost {
    /// One-time plan construction. Zero when the plan is already cached.
    pub build_us: f64,
    /// One PCG iteration at this tier.
    pub per_iteration_us: f64,
    /// Expected iteration count to convergence at this tier.
    pub expected_iterations: usize,
}

impl TierCost {
    /// Expected total service time at this tier.
    pub fn expected_total_us(&self) -> f64 {
        self.build_us + self.expected_iterations as f64 * self.per_iteration_us
    }
}

/// Per-tier cost table for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCosts {
    /// The configured pipeline.
    pub full: TierCost,
    /// ILU(0), no sparsify, natural ordering.
    pub light: TierCost,
    /// Diagonal preconditioning, no build at all.
    pub jacobi: TierCost,
}

impl TierCosts {
    /// The cost row for `tier`.
    pub fn at(&self, tier: SolveTier) -> TierCost {
        match tier {
            SolveTier::Full => self.full,
            SolveTier::Light => self.light,
            SolveTier::Jacobi => self.jacobi,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue occupancy exceeded this priority's ceiling.
    Occupancy,
    /// No tier at or above the quality floor fits the deadline.
    DeadlineInfeasible,
    /// The fingerprint's circuit breaker is open.
    Quarantined,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::Occupancy => write!(f, "queue occupancy over the priority ceiling"),
            ShedReason::DeadlineInfeasible => write!(f, "deadline infeasible at any allowed tier"),
            ShedReason::Quarantined => write!(f, "fingerprint quarantined by circuit breaker"),
        }
    }
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve it at `tier`, killing the solve after `deadline_iters` PCG
    /// iterations (`usize::MAX` = no watchdog).
    Admit {
        /// Execution rung selected up front.
        tier: SolveTier,
        /// Iteration-count watchdog budget for the PCG guard path.
        deadline_iters: usize,
    },
    /// Reject without doing any work.
    Shed(ShedReason),
}

impl Admission {
    /// `true` for any `Admit`.
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admit { .. })
    }

    /// `true` when admitted below [`SolveTier::Full`].
    pub fn downgraded(&self) -> bool {
        matches!(self, Admission::Admit { tier, .. } if *tier != SolveTier::Full)
    }
}

/// The nested occupancy ceiling for `priority`. `High` uses `> 1.0` so it
/// is only shed by the hard queue bound itself, which [`decide`] checks as
/// `depth >= capacity`.
fn occupancy_ceiling(priority: Priority) -> f64 {
    match priority {
        Priority::Low => 0.50,
        Priority::Normal => 0.75,
        Priority::High => 1.0,
    }
}

/// Pure admission decision. See the module docs for the two gates.
pub fn decide(policy: &RequestPolicy, load: &LoadSnapshot, costs: &TierCosts) -> Admission {
    // Gate 1: occupancy, nested by priority. `High` is capped only by the
    // queue itself being full.
    // A physically full queue sheds every class; otherwise only classes
    // whose occupancy ceiling is crossed (High has none short of full).
    let full = load.queue_depth >= load.queue_capacity.max(1);
    let over_ceiling =
        load.occupancy() >= occupancy_ceiling(policy.priority) && policy.priority != Priority::High;
    if full || over_ceiling {
        return Admission::Shed(ShedReason::Occupancy);
    }

    // No deadline: admit at full quality, watchdog disabled.
    let Some(deadline) = policy.deadline else {
        return Admission::Admit { tier: SolveTier::Full, deadline_iters: usize::MAX };
    };

    // Gate 2: walk the ladder Full → Light → Jacobi, stopping at the
    // first tier expected to finish inside the deadline. The queue wait is
    // tier-independent; the build and iteration prices are not.
    let deadline_us = deadline.as_secs_f64() * 1e6;
    let wait_us = load.expected_wait_us();
    let mut tier = SolveTier::Full;
    loop {
        let cost = costs.at(tier);
        if wait_us + cost.expected_total_us() <= deadline_us {
            let remaining_us = deadline_us - wait_us - cost.build_us;
            return Admission::Admit {
                tier,
                deadline_iters: iteration_budget(remaining_us, cost.per_iteration_us),
            };
        }
        match tier.cheaper().filter(|t| *t >= policy.min_quality) {
            Some(t) => tier = t,
            None => break,
        }
    }

    // Nothing fits. High priority still gets best-effort service at the
    // floor (the watchdog bounds the damage); everyone else is shed.
    if policy.priority == Priority::High {
        let floor = policy.min_quality;
        let cost = costs.at(floor);
        let remaining_us = deadline_us - wait_us - cost.build_us;
        return Admission::Admit {
            tier: floor,
            deadline_iters: iteration_budget(remaining_us.max(0.0), cost.per_iteration_us),
        };
    }
    Admission::Shed(ShedReason::DeadlineInfeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    fn costs() -> TierCosts {
        TierCosts {
            full: TierCost { build_us: 2_000.0, per_iteration_us: 50.0, expected_iterations: 40 },
            light: TierCost { build_us: 400.0, per_iteration_us: 60.0, expected_iterations: 60 },
            jacobi: TierCost { build_us: 5.0, per_iteration_us: 30.0, expected_iterations: 150 },
        }
    }

    fn idle() -> LoadSnapshot {
        LoadSnapshot { queue_depth: 0, queue_capacity: 64, queued_cost_us: 0.0, workers: 4 }
    }

    #[test]
    fn no_deadline_admits_full_with_watchdog_off() {
        let a = decide(&RequestPolicy::default(), &idle(), &costs());
        assert_eq!(a, Admission::Admit { tier: SolveTier::Full, deadline_iters: usize::MAX });
    }

    #[test]
    fn generous_deadline_admits_full_with_finite_budget() {
        let p = RequestPolicy::default().with_deadline(Duration::from_millis(100));
        let Admission::Admit { tier, deadline_iters } = decide(&p, &idle(), &costs()) else {
            panic!("expected admit");
        };
        assert_eq!(tier, SolveTier::Full);
        // (100_000 − 2_000) / 50 = 1_960 iterations.
        assert_eq!(deadline_iters, 1_960);
    }

    #[test]
    fn tight_deadline_downgrades_to_the_first_fitting_tier() {
        // Expected totals under costs(): Full 2000 + 40·50 = 4000 µs,
        // Light 400 + 60·60 = 4000 µs, Jacobi 5 + 150·30 = 4505 µs.
        // 3.5 ms fits no tier → Normal priority is shed.
        let p = RequestPolicy::default().with_deadline(Duration::from_micros(3_500));
        assert_eq!(decide(&p, &idle(), &costs()), Admission::Shed(ShedReason::DeadlineInfeasible));

        // 4.1 ms fits Full (4000 ≤ 4100), admitted with the trimmed
        // budget (4100 − 2000) / 50 = 42 iterations.
        let p = RequestPolicy::default().with_deadline(Duration::from_micros(4_100));
        assert_eq!(
            decide(&p, &idle(), &costs()),
            Admission::Admit { tier: SolveTier::Full, deadline_iters: 42 }
        );

        // 2 ms of expected queue wait shifts every tier by 2000 µs: a
        // 4.6 ms deadline now fits nothing (cheapest is 2000 + 4505), a
        // 6.6 ms deadline fits Full again (2000 + 4000 ≤ 6600).
        let load = LoadSnapshot { queued_cost_us: 8_000.0, ..idle() };
        assert_eq!(load.expected_wait_us(), 2_000.0);
        let p = RequestPolicy::default().with_deadline(Duration::from_micros(4_600));
        assert_eq!(decide(&p, &load, &costs()), Admission::Shed(ShedReason::DeadlineInfeasible));
        let p = RequestPolicy::default().with_deadline(Duration::from_micros(6_600));
        let Admission::Admit { tier, .. } = decide(&p, &load, &costs()) else { panic!() };
        assert_eq!(tier, SolveTier::Full);
    }

    #[test]
    fn downgrade_selects_light_then_jacobi() {
        // Costs where Full is slow but Light/Jacobi are quick.
        let c = TierCosts {
            full: TierCost { build_us: 50_000.0, per_iteration_us: 100.0, expected_iterations: 50 },
            light: TierCost { build_us: 500.0, per_iteration_us: 40.0, expected_iterations: 60 },
            jacobi: TierCost { build_us: 0.0, per_iteration_us: 10.0, expected_iterations: 100 },
        };
        // 10 ms: Full needs 55 ms → no. Light needs 2.9 ms → yes.
        let p = RequestPolicy::default().with_deadline(Duration::from_millis(10));
        let Admission::Admit { tier, deadline_iters } = decide(&p, &idle(), &c) else { panic!() };
        assert_eq!(tier, SolveTier::Light);
        assert_eq!(deadline_iters, (10_000 - 500) / 40);
        // 2 ms: Light needs 2.9 ms → no. Jacobi needs 1 ms → yes.
        let p = RequestPolicy::default().with_deadline(Duration::from_millis(2));
        let Admission::Admit { tier, .. } = decide(&p, &idle(), &c) else { panic!() };
        assert_eq!(tier, SolveTier::Jacobi);
        // Same deadline with a Light floor: Jacobi is off the table → shed.
        let p = p.with_min_quality(SolveTier::Light);
        assert_eq!(decide(&p, &idle(), &c), Admission::Shed(ShedReason::DeadlineInfeasible));
        // …unless the request is High priority: floor tier, best effort.
        let p = p.with_priority(Priority::High);
        let Admission::Admit { tier, .. } = decide(&p, &idle(), &c) else { panic!() };
        assert_eq!(tier, SolveTier::Light);
    }

    #[test]
    fn occupancy_ceilings_are_nested() {
        let costs = costs();
        let at = |depth: usize| LoadSnapshot { queue_depth: depth, ..idle() };
        let p = |pri: Priority| RequestPolicy::default().with_priority(pri);
        // 50% ceiling: depth 32/64 sheds Low, admits Normal and High.
        assert_eq!(
            decide(&p(Priority::Low), &at(32), &costs),
            Admission::Shed(ShedReason::Occupancy)
        );
        assert!(decide(&p(Priority::Normal), &at(32), &costs).admitted());
        assert!(decide(&p(Priority::High), &at(32), &costs).admitted());
        // 75% ceiling: depth 48 sheds Normal, admits High.
        assert_eq!(
            decide(&p(Priority::Normal), &at(48), &costs),
            Admission::Shed(ShedReason::Occupancy)
        );
        assert!(decide(&p(Priority::High), &at(48), &costs).admitted());
        // Full queue sheds everyone.
        assert_eq!(
            decide(&p(Priority::High), &at(64), &costs),
            Admission::Shed(ShedReason::Occupancy)
        );
    }

    proptest! {
        /// The monotone-shedding property the ISSUE requires: at any
        /// snapshot and policy, if a higher-priority request is shed then
        /// the identical lower-priority request is shed too — equivalently,
        /// no lower class is ever admitted where a higher class is refused.
        #[test]
        fn shedding_is_monotone_in_priority(
            depth in 0usize..200,
            capacity in 1usize..128,
            queued_us in 0.0f64..1e6,
            workers in 1usize..16,
            deadline_us in 0u64..10_000_000,
            floor in 0u8..3,
        ) {
            // deadline_us == 0 plays the role of "no deadline".
            let load = LoadSnapshot {
                queue_depth: depth,
                queue_capacity: capacity,
                queued_cost_us: queued_us,
                workers,
            };
            let floor = match floor {
                0 => SolveTier::Jacobi,
                1 => SolveTier::Light,
                _ => SolveTier::Full,
            };
            let base = RequestPolicy {
                deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
                priority: Priority::Normal,
                min_quality: floor,
            };
            let verdicts: Vec<bool> = Priority::ALL
                .iter()
                .map(|&pri| decide(&RequestPolicy { priority: pri, ..base }, &load, &costs()).admitted())
                .collect();
            // admitted(Low) ⇒ admitted(Normal) ⇒ admitted(High).
            prop_assert!(!verdicts[0] || verdicts[1], "Low admitted but Normal shed");
            prop_assert!(!verdicts[1] || verdicts[2], "Normal admitted but High shed");
        }
    }

    #[test]
    fn expired_deadline_admits_high_with_zero_budget() {
        // High priority, deadline already consumed by queue wait: admitted
        // at the floor with a zero-iteration budget — the worker turns that
        // into a typed DeadlineExceeded, not silent work.
        let load = LoadSnapshot { queued_cost_us: 1e9, ..idle() };
        let p = RequestPolicy::default()
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(1));
        let Admission::Admit { deadline_iters, .. } = decide(&p, &load, &costs()) else { panic!() };
        assert_eq!(deadline_iters, 0);
    }
}
