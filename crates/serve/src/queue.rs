//! A bounded MPMC queue built on `std` only (`Mutex` + two `Condvar`s).
//!
//! `std::sync::mpsc` is single-consumer, so a worker *pool* needs its own
//! queue. This one adds the two service-specific operations the channel
//! could not provide anyway:
//!
//! * [`BoundedQueue::try_push`] — non-blocking admission, the backpressure
//!   signal surfaced to clients as `QueueFull`;
//! * [`BoundedQueue::drain_matching`] — removes every queued item matching
//!   a predicate (up to a limit), preserving the relative order of what
//!   remains. This is how a worker coalesces same-fingerprint requests
//!   into one batch.
//!
//! Closing the queue wakes all waiters; pops drain remaining items before
//! reporting closure, so shutdown never drops accepted work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (only from [`BoundedQueue::try_push`]).
    Full(T),
    /// The queue is closed; no more items are accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO. See the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` only if there is room right now.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty. Returns
    /// `None` only once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Removes up to `max` queued items satisfying `pred`, in FIFO order,
    /// leaving the rest in their original relative order. Never blocks.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool, max: usize) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut inner = self.inner.lock().unwrap();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.items.len());
        while let Some(item) = inner.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        drop(inner);
        if !taken.is_empty() {
            self.not_full.notify_all();
        }
        taken
    }

    /// Closes the queue: pending and future pushes fail, pops drain the
    /// remainder then return `None`. Idempotent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_and_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn drain_matching_preserves_order() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let even = q.drain_matching(|x| x % 2 == 0, 2);
        assert_eq!(even, vec![0, 2]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4), "beyond-max match stays queued");
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_resumes_after_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = thread::spawn(move || q2.push(1).is_ok());
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(0));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let popper = thread::spawn(move || q2.pop());
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
