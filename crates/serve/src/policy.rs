//! Request policies: what a client is willing to wait for, how important
//! the request is, and how much solve quality it is willing to trade away
//! under load.
//!
//! The policy travels with each request
//! ([`SolveRequest::policy`](crate::SolveRequest::policy))
//! and is consumed once, up front, by the admission controller
//! ([`crate::admission`]): the controller turns it into either a rejection
//! ([`crate::ServeError::Shed`]) or an admitted request pinned to a
//! concrete [`SolveTier`] and an iteration-count watchdog budget. Nothing
//! in the hot solve loop ever re-reads the policy — deadline enforcement
//! is a single integer comparison inside the PCG guard path.

use std::time::Duration;

/// Importance class of a request. Under overload the service sheds strictly
/// by priority: a lower class is never admitted at a queue depth where a
/// higher class is shed (see [`crate::admission::decide`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort work; first to be shed.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work; only shed when the queue is truly full.
    High,
}

impl Priority {
    /// Stable numeric tag (also the [`spcg_probe::AdmissionEvent`] priority
    /// encoding): higher = more important.
    pub fn tag(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// All classes, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];
}

/// Execution rung a request is served at. Ordered by *quality*: `Jacobi <
/// Light < Full`, so `tier >= policy.min_quality` is the degradation
/// floor check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SolveTier {
    /// Diagonal (Jacobi) preconditioning, no factorization, no plan cache
    /// entry. More iterations per solve, but near-zero setup — the rung of
    /// last resort before shedding.
    Jacobi,
    /// A cheap plan: ILU(0), no sparsification pass, natural ordering.
    /// Skips the analysis work that makes the full plan expensive to build.
    Light,
    /// The service's configured pipeline, exactly as a plain
    /// [`submit`](crate::SolveService::submit) would run it.
    Full,
}

impl SolveTier {
    /// Stable numeric tag, used to keep tiers apart in the plan-cache key
    /// and its shard hash.
    pub fn tag(self) -> u64 {
        match self {
            SolveTier::Jacobi => 0,
            SolveTier::Light => 1,
            SolveTier::Full => 2,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SolveTier::Jacobi => "jacobi",
            SolveTier::Light => "light",
            SolveTier::Full => "full",
        }
    }

    /// The next cheaper rung, or `None` at the bottom.
    pub fn cheaper(self) -> Option<SolveTier> {
        match self {
            SolveTier::Full => Some(SolveTier::Light),
            SolveTier::Light => Some(SolveTier::Jacobi),
            SolveTier::Jacobi => None,
        }
    }
}

/// Per-request serving policy. The default is the pre-policy behaviour:
/// no deadline, normal priority, any quality accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Wall-clock budget from submission to reply. `None` disables both the
    /// admission feasibility check and the in-solve watchdog.
    pub deadline: Option<Duration>,
    /// Shedding class under overload.
    pub priority: Priority,
    /// The lowest [`SolveTier`] this request accepts. Requests that cannot
    /// meet their deadline even at this floor are shed rather than served
    /// below it.
    pub min_quality: SolveTier,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        Self { deadline: None, priority: Priority::Normal, min_quality: SolveTier::Jacobi }
    }
}

impl RequestPolicy {
    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the degradation floor.
    pub fn with_min_quality(mut self, min_quality: SolveTier) -> Self {
        self.min_quality = min_quality;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_quality() {
        assert!(SolveTier::Jacobi < SolveTier::Light);
        assert!(SolveTier::Light < SolveTier::Full);
        assert_eq!(SolveTier::Full.cheaper(), Some(SolveTier::Light));
        assert_eq!(SolveTier::Light.cheaper(), Some(SolveTier::Jacobi));
        assert_eq!(SolveTier::Jacobi.cheaper(), None);
    }

    #[test]
    fn priorities_order_by_importance() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::ALL.to_vec(), {
            let mut v = Priority::ALL.to_vec();
            v.sort();
            v
        });
    }

    #[test]
    fn default_policy_is_the_legacy_behaviour() {
        let p = RequestPolicy::default();
        assert_eq!(p.deadline, None);
        assert_eq!(p.priority, Priority::Normal);
        assert_eq!(p.min_quality, SolveTier::Jacobi);
    }

    #[test]
    fn builders_compose() {
        let p = RequestPolicy::default()
            .with_deadline(Duration::from_millis(5))
            .with_priority(Priority::High)
            .with_min_quality(SolveTier::Light);
        assert_eq!(p.deadline, Some(Duration::from_millis(5)));
        assert_eq!(p.priority, Priority::High);
        assert_eq!(p.min_quality, SolveTier::Light);
    }
}
