//! Per-fingerprint circuit breaker: quarantine systems that keep failing.
//!
//! A matrix whose solves repeatedly break down or blow their deadline
//! burns worker time that healthy requests need. The breaker is the
//! classic three-state machine, keyed by [`PlanKey`]:
//!
//! * **Closed** — requests flow. `failure_threshold` *consecutive*
//!   failures trip it open.
//! * **Open** — requests are rejected instantly (no queueing, no solving)
//!   until a backoff interval expires. The interval doubles on every
//!   re-trip, from `base_backoff` up to `max_backoff`.
//! * **Half-open** — after the backoff, exactly one probe request is let
//!   through. Success closes the breaker (and resets the backoff
//!   schedule); failure re-opens it with the next-longer interval.
//!
//! The state machine is **pure**: time enters only as a `u64` millisecond
//! timestamp passed by the caller, so the whole schedule is unit-testable
//! without threads or clocks (see the tests below, which are the
//! specification). [`BreakerRegistry`] wraps a keyed map of machines in a
//! mutex for service use; the per-call critical section is a few integer
//! compares.
//!
//! What counts as failure is decided by the *caller* (the service): an
//! unrecovered breakdown after the resilient ladder, or a blown deadline.
//! A ladder-recovered solve converged — it is a success, not a failure,
//! and must close a half-open breaker.

use crate::cache::PlanKey;
use std::collections::HashMap;
use std::sync::Mutex;

/// Breaker tuning. Defaults: 3 consecutive failures to open, 100 ms base
/// backoff doubling to a 10 s cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open (min 1).
    pub failure_threshold: u32,
    /// First open interval, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, base_backoff_ms: 100, max_backoff_ms: 10_000 }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; requests flow.
    Closed,
    /// Quarantined until the embedded deadline (ms, caller's timebase).
    Open {
        /// Timestamp at which the breaker transitions to half-open.
        until_ms: u64,
    },
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// What the breaker says about one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: proceed normally.
    Allow,
    /// Half-open: proceed, and report the outcome — this request is the
    /// probe.
    Probe,
    /// Open (or half-open with a probe already out): reject without doing
    /// any work.
    Quarantined {
        /// Milliseconds until the next probe opportunity (0 when a probe
        /// is already in flight).
        retry_in_ms: u64,
    },
}

/// Transition and rejection tallies for one breaker (or, summed, for a
/// whole [`BreakerRegistry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerCounters {
    /// Closed → open transitions.
    pub opened: u64,
    /// Open → half-open transitions.
    pub half_opened: u64,
    /// Half-open → closed transitions.
    pub closed: u64,
    /// Requests rejected while open / probe-pending.
    pub rejected: u64,
}

/// One pure breaker state machine. All methods take `now_ms` on the
/// caller's monotonic millisecond timebase.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Number of times the breaker has (re-)opened without an intervening
    /// close; exponent of the backoff schedule.
    trips: u32,
    counters: BreakerCounters,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            counters: BreakerCounters::default(),
        }
    }

    /// Current state (tests, dashboards).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Counter snapshot.
    pub fn counters(&self) -> BreakerCounters {
        self.counters
    }

    /// The open interval after `trips` consecutive trips: `base · 2^(t-1)`,
    /// saturating at `max_backoff_ms`.
    fn backoff_ms(&self) -> u64 {
        let exp = self.trips.saturating_sub(1).min(63);
        self.cfg
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.cfg.max_backoff_ms)
    }

    /// Gate one incoming request at time `now_ms`.
    pub fn admit(&mut self, now_ms: u64) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open { until_ms } if now_ms >= until_ms => {
                self.state = BreakerState::HalfOpen;
                self.counters.half_opened += 1;
                BreakerDecision::Probe
            }
            BreakerState::Open { until_ms } => {
                self.counters.rejected += 1;
                BreakerDecision::Quarantined { retry_in_ms: until_ms - now_ms }
            }
            BreakerState::HalfOpen => {
                // A probe is already in flight; don't pile more work onto a
                // suspect fingerprint.
                self.counters.rejected += 1;
                BreakerDecision::Quarantined { retry_in_ms: 0 }
            }
        }
    }

    /// Report a successful solve (converged, possibly via the ladder).
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.counters.closed += 1;
                self.consecutive_failures = 0;
                self.trips = 0;
            }
            _ => self.consecutive_failures = 0,
        }
    }

    /// Release a half-open probe slot whose request never actually ran —
    /// it was shed at admission (the occupancy or feasibility gate runs
    /// after the breaker gate), bounced off a full or closing queue, or
    /// its deadline expired before a single iteration was spent. The
    /// fingerprint learned nothing, so the breaker returns to **open**
    /// with the *same* backoff exponent: the schedule neither advances
    /// (that would punish a load problem) nor resets (the matrix is
    /// still suspect), and the next probe opportunity is one unchanged
    /// backoff interval after `now_ms`. Without this, a shed probe
    /// would leave the breaker half-open forever and every later
    /// request would be rejected with `retry_in_ms: 0`. No-op outside
    /// half-open.
    pub fn abort_probe(&mut self, now_ms: u64) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open { until_ms: now_ms + self.backoff_ms() };
        }
    }

    /// Report a failed solve (unrecovered breakdown or blown deadline) that
    /// finished at time `now_ms`.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open, next-longer backoff.
                self.trips += 1;
                self.counters.opened += 1;
                self.state = BreakerState::Open { until_ms: now_ms + self.backoff_ms() };
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold.max(1) {
                    self.trips += 1;
                    self.counters.opened += 1;
                    self.state = BreakerState::Open { until_ms: now_ms + self.backoff_ms() };
                }
            }
            // A straggler failure landing while already open changes
            // nothing: the quarantine clock is already running.
            BreakerState::Open { .. } => {}
        }
    }
}

/// Keyed collection of breakers behind one mutex. Missing keys are
/// implicitly closed breakers (created on first failure or first admit).
pub struct BreakerRegistry {
    cfg: BreakerConfig,
    map: Mutex<HashMap<PlanKey, CircuitBreaker>>,
}

impl BreakerRegistry {
    /// An empty registry under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self { cfg, map: Mutex::new(HashMap::new()) }
    }

    /// Gate a request for `key` at `now_ms`.
    pub fn admit(&self, key: &PlanKey, now_ms: u64) -> BreakerDecision {
        let mut map = self.map.lock().unwrap();
        match map.get_mut(key) {
            // No entry = closed with zero history; avoid allocating an
            // entry for every healthy fingerprint.
            None => BreakerDecision::Allow,
            Some(b) => b.admit(now_ms),
        }
    }

    /// Report a success for `key`.
    pub fn record_success(&self, key: &PlanKey) {
        if let Some(b) = self.map.lock().unwrap().get_mut(key) {
            b.record_success();
        }
    }

    /// Release `key`'s half-open probe slot (see
    /// [`CircuitBreaker::abort_probe`]): the probe request never ran, so
    /// the breaker re-opens without advancing the backoff schedule.
    pub fn abort_probe(&self, key: &PlanKey, now_ms: u64) {
        if let Some(b) = self.map.lock().unwrap().get_mut(key) {
            b.abort_probe(now_ms);
        }
    }

    /// Report a failure for `key` at `now_ms`.
    pub fn record_failure(&self, key: &PlanKey, now_ms: u64) {
        let mut map = self.map.lock().unwrap();
        map.entry(*key).or_insert_with(|| CircuitBreaker::new(self.cfg)).record_failure(now_ms);
    }

    /// State of `key`'s breaker (`Closed` when never tripped).
    pub fn state(&self, key: &PlanKey) -> BreakerState {
        self.map.lock().unwrap().get(key).map_or(BreakerState::Closed, |b| b.state())
    }

    /// Counters summed over every keyed breaker.
    pub fn counters(&self) -> BreakerCounters {
        let map = self.map.lock().unwrap();
        map.values().fold(BreakerCounters::default(), |mut acc, b| {
            let c = b.counters();
            acc.opened += c.opened;
            acc.half_opened += c.half_opened;
            acc.closed += c.closed;
            acc.rejected += c.rejected;
            acc
        })
    }
}

impl std::fmt::Debug for BreakerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BreakerRegistry")
            .field("breakers", &self.map.lock().unwrap().len())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
        })
    }

    #[test]
    fn closed_until_threshold_consecutive_failures() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold stays closed");
        // A success resets the consecutive count — the threshold is about
        // *consecutive* failures, not lifetime totals.
        b.record_success();
        b.record_failure(2);
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(4);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 104 });
        assert_eq!(b.counters().opened, 1);
    }

    #[test]
    fn full_cycle_closed_open_half_open_closed() {
        let mut b = breaker();
        for t in 0..3 {
            assert_eq!(b.admit(t), BreakerDecision::Allow);
            b.record_failure(t);
        }
        // Open: rejects with the remaining quarantine time.
        assert_eq!(b.admit(50), BreakerDecision::Quarantined { retry_in_ms: 52 });
        assert_eq!(b.counters().rejected, 1);
        // Backoff expired: exactly one probe flows.
        assert_eq!(b.admit(102), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A second request during the probe is still rejected.
        assert_eq!(b.admit(103), BreakerDecision::Quarantined { retry_in_ms: 0 });
        // Probe succeeds: closed, schedule reset.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(104), BreakerDecision::Allow);
        let c = b.counters();
        assert_eq!((c.opened, c.half_opened, c.closed, c.rejected), (1, 1, 1, 2));
    }

    #[test]
    fn failed_probe_doubles_the_backoff() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open { until_ms: 102 });
        assert_eq!(b.admit(102), BreakerDecision::Probe);
        b.record_failure(110);
        // Second trip: 100 · 2 = 200 ms.
        assert_eq!(b.state(), BreakerState::Open { until_ms: 310 });
        assert_eq!(b.admit(310), BreakerDecision::Probe);
        b.record_failure(320);
        // Third trip: 400 ms.
        assert_eq!(b.state(), BreakerState::Open { until_ms: 720 });
        assert_eq!(b.counters().opened, 3);
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let mut b = breaker();
        let mut now = 0;
        for _ in 0..3 {
            b.record_failure(now);
        }
        // Trip repeatedly; the interval must never exceed max_backoff_ms.
        for _ in 0..12 {
            let BreakerState::Open { until_ms } = b.state() else {
                panic!("expected open");
            };
            assert!(until_ms - now <= 1_000, "backoff exceeded the cap");
            now = until_ms;
            assert_eq!(b.admit(now), BreakerDecision::Probe);
            b.record_failure(now);
        }
        let BreakerState::Open { until_ms } = b.state() else { panic!() };
        assert_eq!(until_ms - now, 1_000, "deep backoff pins to the cap");
    }

    #[test]
    fn probe_success_resets_the_backoff_schedule() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.admit(200), BreakerDecision::Probe);
        b.record_failure(200); // 2nd trip → 200 ms
        assert_eq!(b.admit(400), BreakerDecision::Probe);
        b.record_success(); // closed, trips reset
        for t in 500..503 {
            b.record_failure(t);
        }
        // After a clean close the schedule restarts at the base interval.
        assert_eq!(b.state(), BreakerState::Open { until_ms: 502 + 100 });
    }

    #[test]
    fn late_failures_while_open_do_not_extend_quarantine() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        let open = b.state();
        b.record_failure(50); // straggler from an in-flight batchmate
        assert_eq!(b.state(), open, "quarantine deadline unchanged");
        assert_eq!(b.counters().opened, 1);
    }

    #[test]
    fn aborted_probe_reopens_without_advancing_backoff() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open { until_ms: 102 });
        assert_eq!(b.admit(102), BreakerDecision::Probe);
        // The probe request was shed before it ran: release the slot.
        b.abort_probe(150);
        // Back to open at the *first-trip* interval (100 ms) — an abort is
        // neutral, so the backoff neither doubles (failure) nor resets
        // (success).
        assert_eq!(b.state(), BreakerState::Open { until_ms: 250 });
        // The slot is reusable: once the interval passes the next request
        // is a probe again, not a `Quarantined { retry_in_ms: 0 }` dead
        // end.
        assert_eq!(b.admit(250), BreakerDecision::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let c = b.counters();
        assert_eq!((c.opened, c.half_opened, c.closed), (1, 2, 1));
    }

    #[test]
    fn abort_probe_outside_half_open_is_a_no_op() {
        let mut b = breaker();
        b.abort_probe(5);
        assert_eq!(b.state(), BreakerState::Closed);
        for t in 0..3 {
            b.record_failure(t);
        }
        let open = b.state();
        b.abort_probe(50);
        assert_eq!(b.state(), open, "an abort while already open changes nothing");
    }

    #[test]
    fn counters_reconcile_over_a_long_run() {
        let mut b = breaker();
        let mut now = 0u64;
        // 5 full trip/probe/fail cycles then one recovery.
        for _ in 0..5 {
            while b.state() == BreakerState::Closed {
                b.record_failure(now);
                now += 1;
            }
            let BreakerState::Open { until_ms } = b.state() else { panic!() };
            assert!(matches!(
                b.admit(until_ms.saturating_sub(1)),
                BreakerDecision::Quarantined { .. }
            ));
            now = until_ms;
            assert_eq!(b.admit(now), BreakerDecision::Probe);
            b.record_failure(now);
        }
        let BreakerState::Open { until_ms } = b.state() else { panic!() };
        assert_eq!(b.admit(until_ms), BreakerDecision::Probe);
        b.record_success();
        let c = b.counters();
        // Every open eventually produced a half-open probe; exactly one
        // close; every cycle rejected exactly one request while open.
        assert_eq!(c.opened, 6);
        assert_eq!(c.half_opened, 6);
        assert_eq!(c.closed, 1);
        assert_eq!(c.rejected, 5);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn registry_isolates_keys_and_sums_counters() {
        use spcg_core::{OrderingKind, PrecisionPolicy};
        use spcg_sparse::generators::poisson_2d;

        let reg = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 2,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
        });
        let sick = PlanKey::of(&poisson_2d(4, 4), OrderingKind::Natural, PrecisionPolicy::Full);
        let healthy = PlanKey::of(&poisson_2d(5, 5), OrderingKind::Natural, PrecisionPolicy::Full);
        assert_eq!(reg.admit(&sick, 0), BreakerDecision::Allow);
        reg.record_failure(&sick, 0);
        reg.record_failure(&sick, 1);
        assert!(matches!(reg.admit(&sick, 2), BreakerDecision::Quarantined { .. }));
        assert_eq!(reg.admit(&healthy, 2), BreakerDecision::Allow, "keys are independent");
        assert_eq!(reg.state(&healthy), BreakerState::Closed);
        let c = reg.counters();
        assert_eq!((c.opened, c.rejected), (1, 1));
    }
}
