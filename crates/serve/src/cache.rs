//! Sharded LRU cache of [`SpcgPlan`]s keyed by [`PlanKey`] — the matrix
//! fingerprint *plus* the ordering the plan was built under.
//!
//! The cache is the service's amortization engine: the first request for a
//! system pays the analysis phase (sparsify + factor + level schedules),
//! every later request for the same fingerprint reuses the cached plan via
//! an `Arc` clone. Design constraints, in order:
//!
//! 1. **Hit path is allocation-free** — a hit is a `HashMap` lookup on a
//!    `Copy` key, an `Arc` clone, and a monotonic tick-stamp bump. No
//!    linked-list reordering, no allocation, so the service's cached
//!    `solve_in_place` path preserves the plan's zero-allocation guarantee.
//! 2. **Sharded locking** — the key hashes to one of `N` shards, each with
//!    its own mutex, so concurrent requests for different systems do not
//!    serialize on one lock.
//! 3. **Bounded by entries and bytes** — each insert evicts
//!    least-recently-used entries until the shard respects both its entry
//!    capacity and its byte budget (plan size estimated by
//!    [`SpcgPlan::approx_bytes`]). The global bounds are split across
//!    shards such that the sharded totals never exceed the configured
//!    totals.
//!
//! Hit/miss/eviction tallies are kept in relaxed atomics and can be
//! surfaced through any [`Probe`] as the
//! `serve.cache.*` counter vocabulary via [`PlanCache::emit_counters`].

use crate::policy::SolveTier;
use spcg_core::{ExecutionStrategy, OrderingKind, PrecisionPolicy, PrecondKind, SpcgPlan};
use spcg_probe::{Counter, Probe};
use spcg_sparse::{CsrMatrix, MatrixFingerprint, Scalar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: the matrix fingerprint plus the ordering, precision policy,
/// execution strategy, and serving tier the plan was built under. Two plans
/// over byte-identical matrices but different orderings factor different
/// operators; two plans under different precision policies execute
/// different tiers (and an `Auto` plan may resolve either way per matrix);
/// two plans under different execution strategies run different triangular
/// executors (and the ω ordering search prices against the requested
/// strategy, so the chosen ordering itself can differ); two plans under
/// different preconditioner kinds hold entirely different artifacts (ILU
/// factors vs approximate inverses, and a `PrecondKind::Auto` plan bakes
/// in a per-matrix kind decision); a degraded
/// [`SolveTier::Light`] plan skips the sparsify pass entirely — all are
/// value twins that must never collide. The key carries the *requested*
/// policy/strategy, not the resolved one, so a cached `Auto` plan answers
/// exactly the `Auto` requests whose resolution it already performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structure + value digest of the system matrix.
    pub fp: MatrixFingerprint,
    /// The ordering requested of the planner.
    pub ordering: OrderingKind,
    /// The precision policy requested of the planner.
    pub precision: PrecisionPolicy,
    /// The triangular-solve execution strategy requested of the planner.
    pub exec: ExecutionStrategy,
    /// The preconditioner kind requested of the planner. Keys on the
    /// *request* (`Auto` stays `Auto`), so a cached `Auto` plan answers
    /// exactly the `Auto` requests whose kind search it already ran.
    pub precond: PrecondKind,
    /// The serving tier the plan was built for. [`SolveTier::Full`] for
    /// every non-degraded request (and for everything predating admission
    /// control); [`SolveTier::Light`] plans are built from cheaper options
    /// and must never answer a full-quality request.
    pub tier: SolveTier,
}

impl PlanKey {
    /// Key for `fp` under `ordering` and `precision`, at full quality with
    /// the default (sequential) execution strategy.
    pub fn new(fp: MatrixFingerprint, ordering: OrderingKind, precision: PrecisionPolicy) -> Self {
        Self {
            fp,
            ordering,
            precision,
            exec: ExecutionStrategy::Sequential,
            precond: PrecondKind::IluSparsified,
            tier: SolveTier::Full,
        }
    }

    /// Fingerprints `a` and keys it under `ordering` and `precision`, at
    /// full quality with the default (sequential) execution strategy.
    pub fn of<T: Scalar>(
        a: &CsrMatrix<T>,
        ordering: OrderingKind,
        precision: PrecisionPolicy,
    ) -> Self {
        Self {
            fp: MatrixFingerprint::of(a),
            ordering,
            precision,
            exec: ExecutionStrategy::Sequential,
            precond: PrecondKind::IluSparsified,
            tier: SolveTier::Full,
        }
    }

    /// The same key under a different execution strategy.
    pub fn with_exec(mut self, exec: ExecutionStrategy) -> Self {
        self.exec = exec;
        self
    }

    /// The same key under a different preconditioner kind.
    pub fn with_precond(mut self, precond: PrecondKind) -> Self {
        self.precond = precond;
        self
    }

    /// The same key re-targeted at a (usually degraded) serving tier.
    pub fn with_tier(mut self, tier: SolveTier) -> Self {
        self.tier = tier;
        self
    }
}

/// Sizing knobs for a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independently-locked shards (clamped to `capacity` so
    /// per-shard bounds stay ≥ 1 entry).
    pub shards: usize,
    /// Maximum resident plans across all shards.
    pub capacity: usize,
    /// Maximum estimated resident bytes across all shards. A single plan
    /// larger than its shard's budget is still admitted (alone) — the
    /// budget bounds accumulation, not admissibility.
    pub byte_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { shards: 8, capacity: 64, byte_budget: 512 << 20 }
    }
}

/// A point-in-time snapshot of cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted under capacity or byte pressure.
    pub evictions: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
}

struct Entry<T: Scalar> {
    plan: Arc<SpcgPlan<T>>,
    bytes: usize,
    last_used: u64,
}

struct Shard<T: Scalar> {
    map: HashMap<PlanKey, Entry<T>>,
    /// Monotonic use counter; entries stamp it on every touch, eviction
    /// removes the minimum stamp. This realizes LRU without a list (and
    /// without allocating on the hit path).
    tick: u64,
    bytes: usize,
}

impl<T: Scalar> Shard<T> {
    fn new() -> Self {
        Self { map: HashMap::new(), tick: 0, bytes: 0 }
    }

    /// Evicts LRU entries until the shard is within `cap` entries and
    /// `budget` bytes, never evicting `keep` (the entry just inserted).
    fn evict_to(&mut self, cap: usize, budget: usize, keep: &PlanKey) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap || self.bytes > budget {
            let victim = self
                .map
                .iter()
                .filter(|(key, _)| *key != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(key, _)| *key);
            let Some(key) = victim else { break };
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.bytes;
                evicted += 1;
            }
        }
        evicted
    }
}

/// Sharded, byte-bounded LRU cache of solve plans. See the module docs for
/// the design constraints.
pub struct PlanCache<T: Scalar> {
    shards: Vec<Mutex<Shard<T>>>,
    cap_per_shard: usize,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl<T: Scalar> PlanCache<T> {
    /// Builds an empty cache. Shard count is clamped to `[1, capacity]`
    /// and the entry/byte bounds are floor-divided across shards, so the
    /// sharded totals never exceed the configured totals.
    pub fn new(config: CacheConfig) -> Self {
        let capacity = config.capacity.max(1);
        let shards = config.shards.clamp(1, capacity);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            cap_per_shard: capacity / shards,
            budget_per_shard: config.byte_budget / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard<T>> {
        // The structure hash is already well-mixed; fold in the value
        // digest so same-pattern families still spread across shards, and
        // the ordering/precision tags so a system requested under several
        // configurations does not pile its value twins onto one shard.
        let h = key.fp.structure
            ^ key.fp.values.rotate_left(17)
            ^ key.ordering.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ key.precision.tag().wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ key.exec.tag().wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ key.tier.tag().wrapping_mul(0xA076_1D64_78BD_642F);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up a plan, bumping its recency and the hit/miss tallies.
    /// Allocation-free on both outcomes.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<SpcgPlan<T>>> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let plan = Arc::clone(&e.plan);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a plan, then evicts LRU entries until the
    /// shard respects its entry and byte bounds. The just-inserted plan is
    /// never the victim. Returns how many entries were evicted.
    pub fn insert(&self, key: PlanKey, plan: Arc<SpcgPlan<T>>) -> u64 {
        let bytes = plan.approx_bytes();
        let mut shard = self.shard(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.insert(key, Entry { plan, bytes, last_used: tick }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        let evicted = shard.evict_to(self.cap_per_shard.max(1), self.budget_per_shard, &key);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// `true` when `key` is resident. Does not count as a lookup and does
    /// not bump recency (diagnostic use: tests, dashboards).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.shard(key).lock().unwrap().map.contains_key(key)
    }

    /// A resident plan without the side effects of [`PlanCache::get`]:
    /// no hit/miss tally, no recency bump. This is the admission
    /// controller's view — pricing a prospective request must not disturb
    /// the `hits + misses == lookups` reconciliation or the LRU order,
    /// since the request may yet be shed.
    pub fn peek(&self, key: &PlanKey) -> Option<Arc<SpcgPlan<T>>> {
        self.shard(key).lock().unwrap().map.get(key).map(|e| Arc::clone(&e.plan))
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// `true` when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Counter snapshot (relaxed reads; exact once writers are quiescent).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }

    /// Emits the snapshot through the `serve.cache.*` probe vocabulary.
    pub fn emit_counters<P: Probe>(&self, probe: &mut P) {
        let s = self.stats();
        probe.counter(Counter::ServeCacheHit, s.hits);
        probe.counter(Counter::ServeCacheMiss, s.misses);
        probe.counter(Counter::ServeCacheEviction, s.evictions);
        probe.counter(Counter::ServeCacheBytes, s.bytes as u64);
    }
}

impl<T: Scalar> std::fmt::Debug for PlanCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .field("budget_per_shard", &self.budget_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_core::SpcgOptions;
    use spcg_sparse::generators::poisson_2d;
    use spcg_sparse::CsrMatrix;

    fn plan_for(n: usize) -> (PlanKey, Arc<SpcgPlan<f64>>) {
        let a = poisson_2d(n, n);
        let key = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        (key, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()))
    }

    #[test]
    fn hit_miss_and_recency() {
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        let (fp, plan) = plan_for(6);
        assert!(cache.get(&fp).is_none());
        cache.insert(fp, plan);
        assert!(cache.get(&fp).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_evicts_lru() {
        let cache: PlanCache<f64> =
            PlanCache::new(CacheConfig { shards: 1, capacity: 2, byte_budget: usize::MAX });
        let plans: Vec<_> = [4, 5, 6].iter().map(|&n| plan_for(n)).collect();
        cache.insert(plans[0].0, Arc::clone(&plans[0].1));
        cache.insert(plans[1].0, Arc::clone(&plans[1].1));
        // Touch plan 0 so plan 1 is the LRU when plan 2 arrives.
        assert!(cache.get(&plans[0].0).is_some());
        cache.insert(plans[2].0, Arc::clone(&plans[2].1));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&plans[0].0));
        assert!(!cache.contains(&plans[1].0), "LRU entry must be the victim");
        assert!(cache.contains(&plans[2].0));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_but_admits_oversized_alone() {
        let (fp, plan) = plan_for(8);
        let bytes = plan.approx_bytes();
        let cache: PlanCache<f64> =
            PlanCache::new(CacheConfig { shards: 1, capacity: 16, byte_budget: bytes / 2 });
        cache.insert(fp, plan);
        // Over budget, but the sole entry is never evicted.
        assert_eq!(cache.len(), 1);
        let (fp2, plan2) = plan_for(9);
        cache.insert(fp2, plan2);
        // The second insert pushes the shard over budget; the LRU (first)
        // entry goes, the new one stays.
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&fp2));
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        let (fp, plan) = plan_for(6);
        cache.insert(fp, Arc::clone(&plan));
        let once = cache.bytes();
        cache.insert(fp, plan);
        assert_eq!(cache.bytes(), once);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn value_digest_separates_same_pattern_matrices() {
        let a = poisson_2d(6, 6);
        let b: CsrMatrix<f64> = a.map_values(|v| v * 3.0);
        let ka = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let kb = PlanKey::of(&b, OrderingKind::Natural, PrecisionPolicy::Full);
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        cache.insert(ka, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()));
        assert!(cache.get(&kb).is_none(), "same-pattern matrix must not share factors");
    }

    #[test]
    fn ordering_separates_value_twin_plans() {
        let a = poisson_2d(6, 6);
        let natural = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let colored = PlanKey::of(&a, OrderingKind::Coloring, PrecisionPolicy::Full);
        assert_eq!(natural.fp, colored.fp, "same bytes, same fingerprint");
        assert_ne!(natural, colored, "keys must differ by ordering");
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        cache.insert(natural, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()));
        assert!(
            cache.get(&colored).is_none(),
            "a natural plan must never answer a coloring-ordered request"
        );
        let plan =
            SpcgPlan::build(&a, SpcgOptions::default().with_ordering(OrderingKind::Coloring))
                .unwrap();
        cache.insert(colored, Arc::new(plan));
        assert_eq!(cache.len(), 2, "value twins coexist under distinct keys");
        assert!(cache.get(&natural).unwrap().permutation().is_none());
        assert!(cache.get(&colored).unwrap().permutation().is_some());
    }

    #[test]
    fn exec_strategy_separates_value_twin_plans() {
        let a = poisson_2d(6, 6);
        let seq = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let blocks = seq.with_exec(spcg_core::ExecutionStrategy::DependencyBlocks);
        assert_eq!(seq.fp, blocks.fp, "same bytes, same fingerprint");
        assert_ne!(seq, blocks, "keys must differ by execution strategy");
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        cache.insert(seq, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()));
        assert!(
            cache.get(&blocks).is_none(),
            "a sequential plan must never answer a dependency-block request"
        );
        let opts = SpcgOptions::default().with_exec(spcg_core::ExecutionStrategy::DependencyBlocks);
        cache.insert(blocks, Arc::new(SpcgPlan::build(&a, &opts).unwrap()));
        assert_eq!(cache.len(), 2, "value twins coexist under distinct keys");
    }

    #[test]
    fn tier_separates_degraded_plans_and_peek_is_silent() {
        let a = poisson_2d(6, 6);
        let full = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let light = full.with_tier(SolveTier::Light);
        assert_eq!(full.fp, light.fp, "same bytes, same fingerprint");
        assert_ne!(full, light, "keys must differ by tier");
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        let opts = spcg_core::SpcgOptions::default().with_sparsify(None);
        cache.insert(light, Arc::new(SpcgPlan::build(&a, &opts).unwrap()));
        assert!(
            cache.get(&full).is_none(),
            "a degraded plan must never answer a full-quality request"
        );
        // peek finds the light plan without touching the tallies.
        let before = cache.stats();
        assert!(cache.peek(&light).is_some());
        assert!(cache.peek(&full).is_none());
        let after = cache.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn precision_separates_value_twin_plans() {
        let a = poisson_2d(6, 6);
        let full = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let mixed = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::MixedF32);
        assert_eq!(full.fp, mixed.fp, "same bytes, same fingerprint");
        assert_ne!(full, mixed, "keys must differ by precision policy");
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        cache.insert(full, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()));
        assert!(
            cache.get(&mixed).is_none(),
            "a full-precision plan must never answer a mixed-precision request"
        );
        let plan =
            SpcgPlan::build(&a, SpcgOptions::default().with_precision(PrecisionPolicy::MixedF32))
                .unwrap();
        cache.insert(mixed, Arc::new(plan));
        assert_eq!(cache.len(), 2, "value twins coexist under distinct keys");
        assert!(!cache.get(&full).unwrap().is_mixed());
        assert!(cache.get(&mixed).unwrap().is_mixed());
    }

    #[test]
    fn precond_kind_separates_value_twin_plans() {
        let a = poisson_2d(6, 6);
        let ilu = PlanKey::of(&a, OrderingKind::Natural, PrecisionPolicy::Full);
        let fsai = ilu.with_precond(PrecondKind::Fsai);
        assert_eq!(ilu.fp, fsai.fp, "same bytes, same fingerprint");
        assert_ne!(ilu, fsai, "keys must differ by preconditioner kind");
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        cache.insert(ilu, Arc::new(SpcgPlan::build(&a, SpcgOptions::default()).unwrap()));
        assert!(cache.get(&fsai).is_none(), "an ILU plan must never answer a level-free request");
        let plan =
            SpcgPlan::build(&a, SpcgOptions::default().with_precond(PrecondKind::Fsai)).unwrap();
        cache.insert(fsai, Arc::new(plan));
        assert_eq!(cache.len(), 2, "value twins coexist under distinct keys");
        assert!(!cache.get(&ilu).unwrap().is_level_free());
        assert!(cache.get(&fsai).unwrap().is_level_free());
    }
}
