//! The PR-8 serving surface: sequence sessions (value-only plan refresh +
//! warm starts), ticket cancellation, and the `SolveRequest` builder that
//! replaced the `submit_*` family.

use spcg_core::{SpcgOptions, SpcgPlan};
use spcg_probe::{Counter, RecordingProbe, Span};
use spcg_serve::{RequestPolicy, ServeError, ServiceConfig, SolveRequest, SolveService, SolveTier};
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
use spcg_sparse::{CsrMatrix, Rng, SparseError};
use std::sync::Arc;
use std::time::Duration;

fn matrix() -> CsrMatrix<f64> {
    with_magnitude_spread(&poisson_2d(14, 14), 5.0, 3)
}

fn options() -> SpcgOptions {
    SpcgOptions { solver: SolverConfig::default().with_tol(1e-10), ..SpcgOptions::default() }
}

fn service() -> SolveService {
    SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        options: options(),
        ..ServiceConfig::default()
    })
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

#[test]
fn session_reuses_refreshes_and_warm_starts() {
    let a = matrix();
    let service = service();
    let b = rhs(a.n_rows(), 0xbeef);

    let mut session = service.open_session(&a).unwrap();
    let cold = session.step(&a, &b).unwrap();
    assert!(cold.converged() && cold.iterations > 0);

    // Same values, same rhs: the resident solution already satisfies the
    // tolerance, so the warm start converges without a single iteration.
    let warm = session.step(&a, &b).unwrap();
    assert!(warm.converged());
    assert_eq!(warm.iterations, 0, "a warm re-step of the same system must be free");

    // Drifted values: the plan refreshes (numeric factorization only) and
    // the step still warm-starts from the previous solution.
    let a2 = a.map_values(|v| v * 1.001);
    let drift = session.step(&a2, &b).unwrap();
    assert!(drift.converged());
    assert!(
        drift.iterations < cold.iterations,
        "warm start on a 0.1% drift must beat the cold solve ({} >= {})",
        drift.iterations,
        cold.iterations
    );

    let stats = service.stats();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.session_steps, 3);
    assert_eq!(stats.session_refreshes, 1, "only the drifted step refreshes");
}

/// The probe proof, one layer above the plan: a drifted session step emits
/// `plan.refresh` + the numeric factorization only — never the sparsify /
/// reorder / level-build cascade of a full plan build.
#[test]
fn drifted_step_refreshes_without_rebuilding_analysis() {
    let a = matrix();
    let service = service();
    let b = rhs(a.n_rows(), 0xfade);
    let mut session = service.open_session(&a).unwrap();
    session.step(&a, &b).unwrap();

    let a2 = a.map_values(|v| v * 1.002);
    let mut probe = RecordingProbe::new();
    let stats = session.step_probed(&a2, &b, &mut probe).unwrap();
    assert!(stats.converged());
    let trace = probe.finish();
    let spans: Vec<Span> = trace.span_records().unwrap().into_iter().map(|r| r.span).collect();
    assert!(spans.contains(&Span::PlanRefresh), "drift must go through the refresh path");
    assert!(spans.contains(&Span::Factorize), "refresh re-runs the numeric factorization");
    for reused in [Span::Sparsify, Span::Reorder, Span::LevelBuild, Span::PlanBuild] {
        assert!(
            !spans.contains(&reused),
            "{reused:?} fired during a value-only refresh: analysis was not reused"
        );
    }
    assert_eq!(trace.counter_total(Counter::ServeSessionRefresh), 1);
    assert_eq!(trace.counter_total(Counter::PlanRefreshFallback), 0);
}

/// Sessions share refreshed plans through the service cache: a twin session
/// stepping onto values another session already refreshed to gets the
/// resident plan (same `Arc`), paying no second factorization.
#[test]
fn twin_sessions_share_refreshed_plans_through_the_cache() {
    let a = matrix();
    let service = service();
    let b = rhs(a.n_rows(), 0xcafe);
    let a2 = a.map_values(|v| v * 1.003);

    let mut s1 = service.open_session(&a).unwrap();
    let mut s2 = service.open_session(&a).unwrap();
    assert_ne!(s1.id(), s2.id());
    assert!(Arc::ptr_eq(s1.plan(), s2.plan()), "same structure digest, same cached plan");

    s1.step(&a2, &b).unwrap(); // pays the refresh, caches the result
    s2.step(&a2, &b).unwrap(); // finds the value twin resident
    assert!(Arc::ptr_eq(s1.plan(), s2.plan()), "the refreshed plan must be shared");
    assert_eq!(service.stats().session_refreshes, 1, "the twin must not refresh again");
}

#[test]
fn session_rejects_structural_change() {
    let a = matrix();
    let service = service();
    let mut session = service.open_session(&a).unwrap();
    session.step(&a, &rhs(a.n_rows(), 1)).unwrap();

    let other = poisson_2d(9, 9);
    match session.step(&other, &rhs(other.n_rows(), 2)) {
        Err(ServeError::PlanBuild(SparseError::InvalidStructure(msg))) => {
            assert!(msg.contains("open a new session"), "unhelpful message: {msg}");
        }
        other => panic!("a structural change must be refused, got {other:?}"),
    }
    // The session survives the refusal and keeps serving its structure.
    assert!(session.step(&a, &rhs(a.n_rows(), 3)).unwrap().converged());
}

/// A session step agrees with a from-scratch plan of the drifted system to
/// solver tolerance (the warm start changes the iterate path, not the
/// fixed point).
#[test]
fn session_steps_match_fresh_plans_numerically() {
    let a = matrix();
    let service = service();
    let b = rhs(a.n_rows(), 0x50de);
    let mut session = service.open_session(&a).unwrap();
    let mut current = a.clone();
    for step in 0..4 {
        session.step(&current, &b).unwrap();
        let fresh = SpcgPlan::build(&current, options()).unwrap().solve(&b).unwrap();
        let x = session.solution();
        let diff: f64 = x.iter().zip(&fresh.x).map(|(s, f)| (s - f) * (s - f)).sum::<f64>().sqrt();
        let norm: f64 = fresh.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            diff / norm < 1e-6,
            "step {step}: session iterate drifted from the fresh solve ({})",
            diff / norm
        );
        current = current.map_values(|v| v * 1.002);
    }
}

#[test]
fn cancelled_queued_request_is_skipped_and_tallied() {
    let a0 = Arc::new(matrix());
    let a1 = Arc::new(with_magnitude_spread(&poisson_2d(12, 15), 4.0, 9));
    // One worker parked in a long admission window so the victim request
    // observably sits in the queue while we cancel it. The victim rides a
    // different fingerprint, so the parked batch cannot coalesce it.
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        batch_window: Duration::from_millis(200),
        batch_limit: 2,
        options: options(),
        ..ServiceConfig::default()
    });
    let parked = service.submit(SolveRequest::new(Arc::clone(&a0), rhs(a0.n_rows(), 4))).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker pops it, sleeps its window
    let victim = service
        .submit(
            SolveRequest::new(Arc::clone(&a1), rhs(a1.n_rows(), 5))
                .policy(RequestPolicy::default()),
        )
        .unwrap();
    victim.cancel();
    assert!(
        matches!(victim.wait(), Err(ServeError::Cancelled)),
        "a cancelled queued request must be answered with the typed error"
    );
    assert!(parked.wait().unwrap().result.converged(), "batchmates are unaffected");

    let stats = service.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, stats.requests, "cancelled requests still complete");
    assert_eq!(
        stats.offered,
        stats.admitted + stats.downgraded + stats.shed + stats.closed_rejected,
        "cancellation happens after admission; the reconciliation invariant is untouched"
    );
}

#[test]
fn cancel_after_completion_is_a_no_op() {
    let a = Arc::new(matrix());
    let service = service();
    let b = rhs(a.n_rows(), 6);
    let ticket = service.submit(SolveRequest::new(Arc::clone(&a), b)).unwrap();
    // Give the single worker time to finish before cancelling.
    std::thread::sleep(Duration::from_millis(100));
    ticket.cancel();
    let out = ticket.wait().expect("a finished request ignores a late cancel");
    assert!(out.result.converged());
    assert_eq!(service.stats().cancelled, 0, "a lost cancel race must not tally");
}

/// The builder path is the old path: a `SolveRequest` submission, a policy
/// submission, and the synchronous solve all produce bitwise-identical
/// iterates.
#[test]
fn builder_submissions_match_synchronous_solves_bitwise() {
    let a = Arc::new(matrix());
    let service = service();
    let b = rhs(a.n_rows(), 7);

    let plain =
        service.submit(SolveRequest::new(Arc::clone(&a), b.clone())).unwrap().wait().unwrap();
    let policied = service
        .submit(SolveRequest::new(Arc::clone(&a), b.clone()).policy(RequestPolicy::default()))
        .unwrap()
        .wait()
        .unwrap();
    let sync = service.solve(&a, &b).unwrap();
    assert_eq!(plain.result.x, sync.result.x);
    assert_eq!(policied.result.x, sync.result.x);
    assert_eq!(policied.tier, SolveTier::Full);
}

/// The deprecated entry points still work (they forward to the builder) —
/// pinned here so the migration shims cannot silently rot before removal.
#[test]
#[allow(deprecated)]
fn deprecated_entry_points_forward_to_the_builder() {
    let a = Arc::new(matrix());
    let service = service();
    let b = rhs(a.n_rows(), 8);
    let via_policy = service
        .submit_with_policy(Arc::clone(&a), b.clone(), RequestPolicy::default())
        .unwrap()
        .wait()
        .unwrap();
    let sync = service.solve(&a, &b).unwrap();
    assert_eq!(via_policy.result.x, sync.result.x);
}
