//! Concurrency stress: many client threads hammer one service with
//! interleaved systems and injected faults, and every answer must be
//! **bitwise identical** to the single-threaded solve of the same request —
//! no matter which worker ran it, what batch it rode in, or what its
//! batchmates did. The run completing at all is the no-deadlock assertion
//! (belt-and-braces: the whole exchange runs under a watchdog), and the
//! cache counters must reconcile exactly afterwards.

use spcg_core::{FaultInjection, ResilienceOptions, SpcgOptions, SpcgPlan};
use spcg_serve::{CacheConfig, ServiceConfig, SolveService};
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{layered_poisson_2d, poisson_2d, with_magnitude_spread};
use spcg_sparse::{CsrMatrix, Rng};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn matrices() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(with_magnitude_spread(&poisson_2d(14, 14), 5.0, 3)),
        Arc::new(with_magnitude_spread(&layered_poisson_2d(12, 12, 4, 0.015), 1.0, 5)),
        Arc::new(with_magnitude_spread(&poisson_2d(12, 15), 4.0, 9)),
    ]
}

fn options() -> SpcgOptions {
    SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-10).with_history(true),
        ..SpcgOptions::default()
    }
}

fn matrix_index(client: usize, i: usize, count: usize) -> usize {
    (client + i) % count
}

/// Every 5th request of clients 0 and 3 carries a NaN injection: its solve
/// breaks down at iteration 2 and must recover through the ladder.
fn fault_for(client: usize, i: usize) -> Option<FaultInjection> {
    ((client == 0 || client == 3) && i % 5 == 2).then(|| FaultInjection::nan_at(2))
}

fn rhs_for(n: usize, client: usize, i: usize) -> Vec<f64> {
    let mut rng = Rng::new(1000 + (client * 131 + i) as u64);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

#[test]
fn hammered_service_is_bitwise_identical_and_reconciles() {
    let mats = matrices();
    let opts = options();

    // Single-threaded golden answers, computed before the service exists.
    let plans: Vec<SpcgPlan<f64>> =
        mats.iter().map(|m| SpcgPlan::build(m, &opts).unwrap()).collect();
    let golden: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|client| {
            (0..PER_CLIENT)
                .map(|i| {
                    let m = matrix_index(client, i, mats.len());
                    let b = rhs_for(mats[m].n_rows(), client, i);
                    match fault_for(client, i) {
                        None => plans[m].solve(&b).unwrap().x,
                        Some(fault) => {
                            let ropts = ResilienceOptions {
                                fault: Some(fault),
                                ..ResilienceOptions::default()
                            };
                            let mut ws = plans[m].make_workspace();
                            let rs = plans[m]
                                .solve_resilient_with_workspace(&b, &ropts, &mut ws)
                                .unwrap();
                            assert!(!rs.report.clean(), "fault must force a recovery");
                            rs.result.x
                        }
                    }
                })
                .collect()
        })
        .collect();

    // Watchdog: the hammering runs on its own thread; a deadlock anywhere
    // (queue, cache shard, worker pool) trips the timeout instead of
    // hanging the suite.
    let (done_tx, done_rx) = mpsc::channel();
    let mats2 = mats.clone();
    let golden = Arc::new(golden);
    let golden2 = Arc::clone(&golden);
    let opts2 = opts.clone();
    let hammer = std::thread::spawn(move || {
        let service = SolveService::new(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            batch_window: Duration::from_micros(100),
            batch_limit: 8,
            cache: CacheConfig { shards: 2, capacity: 8, byte_budget: 64 << 20 },
            options: opts2,
            resilience: ResilienceOptions::default(),
        });
        std::thread::scope(|s| {
            for client in 0..CLIENTS {
                let service = &service;
                let mats = &mats2;
                let golden = &golden2;
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..PER_CLIENT {
                        let m = matrix_index(client, i, mats.len());
                        let b = rhs_for(mats[m].n_rows(), client, i);
                        let ticket = match fault_for(client, i) {
                            None => service.submit(Arc::clone(&mats[m]), b),
                            Some(f) => service.submit_with_fault(Arc::clone(&mats[m]), b, f),
                        };
                        tickets.push((i, ticket.expect("queue accepts while service lives")));
                    }
                    for (i, ticket) in tickets {
                        let out = ticket.wait().expect("request completes");
                        assert!(out.result.converged(), "client {client} req {i} did not converge");
                        assert_eq!(
                            out.result.x, golden[client][i],
                            "client {client} req {i}: served result diverged bitwise \
                             from the single-threaded solve"
                        );
                        assert_eq!(out.report.is_some(), fault_for(client, i).is_some());
                    }
                });
            }
        });
        let stats = service.stats();
        done_tx.send(stats).unwrap();
    });

    let stats = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("stress run deadlocked (watchdog fired)");
    hammer.join().unwrap();

    let requests = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(stats.requests, requests);
    assert_eq!(stats.completed, requests, "every accepted request must be answered");
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        requests,
        "cache counters must reconcile: hits {} + misses {} != requests {requests}",
        stats.cache.hits,
        stats.cache.misses
    );
    assert_eq!(stats.rejected, 0, "blocking submit never rejects");
    assert!(stats.cache.entries <= 8, "cache capacity respected under load");
}

#[test]
fn backpressure_rejects_then_recovers() {
    let mats = matrices();
    let opts = options();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        // A long admission window keeps the single worker parked after its
        // first pop, so the 1-slot queue observably fills.
        batch_window: Duration::from_millis(100),
        batch_limit: 2,
        options: opts,
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);

    let mut tickets = Vec::new();
    let mut rejected = 0;
    // Push until the queue bounces: with the worker asleep in its window,
    // at most 1 (in flight) + 1 (queued) are accepted.
    for _ in 0..8 {
        match service.try_submit(Arc::clone(&mats[0]), b.clone()) {
            Ok(t) => tickets.push(t),
            Err(spcg_serve::ServeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "bounded queue must shed load under pressure");
    assert!(!tickets.is_empty());
    for t in tickets {
        assert!(t.wait().unwrap().result.converged());
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.cache.hits + stats.cache.misses, stats.requests);

    // Once drained, the service accepts work again.
    let t = service.try_submit(Arc::clone(&mats[0]), b).unwrap();
    assert!(t.wait().unwrap().result.converged());
}

#[test]
fn coalesced_batch_matches_individual_solves() {
    let mats = matrices();
    let opts = options();
    let plan = SpcgPlan::build(&mats[0], &opts).unwrap();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        batch_window: Duration::from_millis(50),
        batch_limit: 16,
        options: opts,
        ..ServiceConfig::default()
    });
    // Same fingerprint, distinct right-hand sides, submitted while the
    // worker waits out its window: they coalesce into one batch.
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let b = rhs_for(mats[0].n_rows(), 9, i);
            service.submit(Arc::clone(&mats[0]), b).unwrap()
        })
        .collect();
    let mut max_batch = 0;
    for (i, t) in tickets.into_iter().enumerate() {
        let out = t.wait().unwrap();
        let b = rhs_for(mats[0].n_rows(), 9, i);
        assert_eq!(out.result.x, plan.solve(&b).unwrap().x, "request {i} diverged in a batch");
        max_batch = max_batch.max(out.batch_size);
    }
    assert!(max_batch >= 2, "the admission window should coalesce at least one pair");
    assert!(service.stats().max_batch >= 2);
}
