//! Concurrency stress: many client threads hammer one service with
//! interleaved systems and injected faults, and every answer must be
//! **bitwise identical** to the single-threaded solve of the same request —
//! no matter which worker ran it, what batch it rode in, or what its
//! batchmates did. The run completing at all is the no-deadlock assertion
//! (belt-and-braces: the whole exchange runs under a watchdog), and the
//! cache counters must reconcile exactly afterwards.

use spcg_core::{FaultInjection, ResilienceOptions, SpcgOptions, SpcgPlan};
use spcg_serve::{
    BreakerConfig, BreakerState, CacheConfig, Priority, RequestPolicy, ServeError, ServiceConfig,
    ShedReason, SolveRequest, SolveService, SolveTier,
};
use spcg_solver::{SolverConfig, SolverError};
use spcg_sparse::generators::{layered_poisson_2d, poisson_2d, with_magnitude_spread};
use spcg_sparse::{CsrMatrix, Rng};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 8;

fn matrices() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(with_magnitude_spread(&poisson_2d(14, 14), 5.0, 3)),
        Arc::new(with_magnitude_spread(&layered_poisson_2d(12, 12, 4, 0.015), 1.0, 5)),
        Arc::new(with_magnitude_spread(&poisson_2d(12, 15), 4.0, 9)),
    ]
}

fn options() -> SpcgOptions {
    SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-10).with_history(true),
        ..SpcgOptions::default()
    }
}

fn matrix_index(client: usize, i: usize, count: usize) -> usize {
    (client + i) % count
}

/// Every 5th request of clients 0 and 3 carries a NaN injection: its solve
/// breaks down at iteration 2 and must recover through the ladder.
fn fault_for(client: usize, i: usize) -> Option<FaultInjection> {
    ((client == 0 || client == 3) && i % 5 == 2).then(|| FaultInjection::nan_at(2))
}

fn rhs_for(n: usize, client: usize, i: usize) -> Vec<f64> {
    let mut rng = Rng::new(1000 + (client * 131 + i) as u64);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

#[test]
fn hammered_service_is_bitwise_identical_and_reconciles() {
    let mats = matrices();
    let opts = options();

    // Single-threaded golden answers, computed before the service exists.
    let plans: Vec<SpcgPlan<f64>> =
        mats.iter().map(|m| SpcgPlan::build(m, &opts).unwrap()).collect();
    let golden: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|client| {
            (0..PER_CLIENT)
                .map(|i| {
                    let m = matrix_index(client, i, mats.len());
                    let b = rhs_for(mats[m].n_rows(), client, i);
                    match fault_for(client, i) {
                        None => plans[m].solve(&b).unwrap().x,
                        Some(fault) => {
                            let ropts = ResilienceOptions {
                                fault: Some(fault),
                                ..ResilienceOptions::default()
                            };
                            let mut ws = plans[m].make_workspace();
                            let rs = plans[m]
                                .solve_resilient_with_workspace(&b, &ropts, &mut ws)
                                .unwrap();
                            assert!(!rs.report.clean(), "fault must force a recovery");
                            rs.result.x
                        }
                    }
                })
                .collect()
        })
        .collect();

    // Watchdog: the hammering runs on its own thread; a deadlock anywhere
    // (queue, cache shard, worker pool) trips the timeout instead of
    // hanging the suite.
    let (done_tx, done_rx) = mpsc::channel();
    let mats2 = mats.clone();
    let golden = Arc::new(golden);
    let golden2 = Arc::clone(&golden);
    let opts2 = opts.clone();
    let hammer = std::thread::spawn(move || {
        let service = SolveService::new(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            batch_window: Duration::from_micros(100),
            batch_limit: 8,
            cache: CacheConfig { shards: 2, capacity: 8, byte_budget: 64 << 20 },
            options: opts2,
            ..ServiceConfig::default()
        });
        std::thread::scope(|s| {
            for client in 0..CLIENTS {
                let service = &service;
                let mats = &mats2;
                let golden = &golden2;
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..PER_CLIENT {
                        let m = matrix_index(client, i, mats.len());
                        let b = rhs_for(mats[m].n_rows(), client, i);
                        let req = SolveRequest::new(Arc::clone(&mats[m]), b);
                        let ticket = match fault_for(client, i) {
                            None => service.submit(req),
                            Some(f) => service.submit(req.fault(f)),
                        };
                        tickets.push((i, ticket.expect("queue accepts while service lives")));
                    }
                    for (i, ticket) in tickets {
                        let out = ticket.wait().expect("request completes");
                        assert!(out.result.converged(), "client {client} req {i} did not converge");
                        assert_eq!(
                            out.result.x, golden[client][i],
                            "client {client} req {i}: served result diverged bitwise \
                             from the single-threaded solve"
                        );
                        assert_eq!(out.report.is_some(), fault_for(client, i).is_some());
                    }
                });
            }
        });
        let stats = service.stats();
        done_tx.send(stats).unwrap();
    });

    let stats = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("stress run deadlocked (watchdog fired)");
    hammer.join().unwrap();

    let requests = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(stats.requests, requests);
    assert_eq!(stats.completed, requests, "every accepted request must be answered");
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        requests,
        "cache counters must reconcile: hits {} + misses {} != requests {requests}",
        stats.cache.hits,
        stats.cache.misses
    );
    assert_eq!(stats.rejected, 0, "blocking submit never rejects");
    assert!(stats.cache.entries <= 8, "cache capacity respected under load");
}

#[test]
fn backpressure_rejects_then_recovers() {
    let mats = matrices();
    let opts = options();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        // A long admission window keeps the single worker parked after its
        // first pop, so the 1-slot queue observably fills.
        batch_window: Duration::from_millis(100),
        batch_limit: 2,
        options: opts,
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);

    let mut tickets = Vec::new();
    let mut rejected = 0;
    // Push until the queue bounces: with the worker asleep in its window,
    // at most 1 (in flight) + 1 (queued) are accepted.
    for _ in 0..8 {
        match service.try_submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone())) {
            Ok(t) => tickets.push(t),
            Err(spcg_serve::ServeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "bounded queue must shed load under pressure");
    assert!(!tickets.is_empty());
    for t in tickets {
        assert!(t.wait().unwrap().result.converged());
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.cache.hits + stats.cache.misses, stats.requests);

    // Once drained, the service accepts work again.
    let t = service.try_submit(SolveRequest::new(Arc::clone(&mats[0]), b)).unwrap();
    assert!(t.wait().unwrap().result.converged());
}

#[test]
fn policy_submission_without_deadline_serves_full_tier() {
    let mats = matrices();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        options: options(),
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    let t = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()))
        .expect("idle service admits");
    let out = t.wait().unwrap();
    assert!(out.result.converged());
    assert_eq!(out.tier, SolveTier::Full, "no deadline means no degradation");
    // Same numerics as the legacy path.
    let golden = service.solve(&mats[0], &b).unwrap();
    assert_eq!(out.result.x, golden.result.x);
    let stats = service.stats();
    assert_eq!((stats.offered, stats.admitted, stats.downgraded, stats.shed), (1, 1, 0, 0));
    assert_eq!(stats.offered, stats.admitted + stats.downgraded + stats.shed);
}

#[test]
fn expired_deadline_yields_typed_error_without_solving() {
    let mats = matrices();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        options: options(),
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    // A nanosecond deadline is infeasible at every tier; High priority is
    // still admitted at its quality floor rather than shed, and the worker
    // finds the deadline long gone by dequeue time.
    let policy = RequestPolicy::default()
        .with_priority(Priority::High)
        .with_deadline(Duration::from_nanos(1));
    let t = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b).policy(policy))
        .expect("High is admitted");
    match t.wait() {
        Err(ServeError::Solver(SolverError::DeadlineExceeded { iterations, .. })) => {
            assert_eq!(iterations, 0, "expired in queue: no iterations were spent");
        }
        other => panic!("expected a typed DeadlineExceeded, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.offered, stats.admitted + stats.downgraded + stats.shed);
}

#[test]
fn occupancy_sheds_strictly_by_priority() {
    let mats = matrices();
    // One worker parked in a long admission window, so the queue depth we
    // create stays put while the policy submissions are judged.
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        batch_window: Duration::from_millis(500),
        batch_limit: 2,
        options: options(),
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    // Occupy the worker, then fill the queue to 50%.
    let parked = service.submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone())).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the worker pop it
    let queued: Vec<_> = (0..2)
        .map(|_| service.submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone())).unwrap())
        .collect();

    let submit = |pri: Priority| {
        service.submit(
            SolveRequest::new(Arc::clone(&mats[0]), b.clone())
                .policy(RequestPolicy::default().with_priority(pri)),
        )
    };
    // At 50% occupancy Low is shed while Normal and High are admitted —
    // the nested-threshold guarantee.
    let low = submit(Priority::Low);
    assert!(
        matches!(low, Err(ServeError::Shed(ShedReason::Occupancy))),
        "Low must shed at 50% occupancy, got {low:?}"
    );
    let normal = submit(Priority::Normal).expect("Normal admitted at 50%");
    let high = submit(Priority::High).expect("High admitted at 50%");

    for t in queued.into_iter().chain([parked, normal, high]) {
        assert!(t.wait().unwrap().result.converged());
    }
    let stats = service.stats();
    assert_eq!((stats.offered, stats.shed), (3, 1));
    assert_eq!(stats.offered, stats.admitted + stats.downgraded + stats.shed);
}

#[test]
fn breaker_quarantines_a_failing_fingerprint() {
    let mats = matrices();
    // A solver that can never converge: every request fails, tripping the
    // fingerprint's breaker after two consecutive failures.
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-300).with_max_iters(2),
        ..SpcgOptions::default()
    };
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        batch_limit: 1,
        options: opts,
        breaker: BreakerConfig {
            failure_threshold: 2,
            base_backoff_ms: 60_000,
            max_backoff_ms: 60_000,
        },
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    for i in 0..2 {
        let t = service
            .submit(
                SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()),
            )
            .unwrap_or_else(|e| panic!("request {i} admitted before the trip, got {e}"));
        let out = t.wait().expect("non-convergence is a result, not an error");
        assert!(!out.result.converged());
    }
    // Third request: quarantined before any work starts.
    let refused = service.submit(
        SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()),
    );
    assert!(
        matches!(refused, Err(ServeError::Shed(ShedReason::Quarantined))),
        "expected quarantine, got {refused:?}"
    );
    let before = service.stats();
    // Quarantined retries stop consuming worker time: completed stays put.
    for _ in 0..5 {
        let r = service.submit(
            SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()),
        );
        assert!(matches!(r, Err(ServeError::Shed(ShedReason::Quarantined))));
    }
    let after = service.stats();
    assert_eq!(after.completed, before.completed, "quarantined requests must not reach workers");
    assert_eq!(after.breaker.opened, 1);
    assert!(after.breaker.rejected >= 6);
    assert_eq!(after.offered, after.admitted + after.downgraded + after.shed);
}

/// A probe request shed *after* the breaker granted its half-open slot
/// must hand the slot back: the admission gates run downstream of the
/// breaker gate, and a leaked slot would pin the breaker half-open —
/// every later request for the fingerprint rejected with
/// `retry_in_ms: 0`, forever.
#[test]
fn shed_probe_releases_the_half_open_slot() {
    let mats = matrices();
    // A solver that can never converge, so the breaker trips on demand.
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-300).with_max_iters(2),
        ..SpcgOptions::default()
    };
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        batch_window: Duration::from_millis(300),
        batch_limit: 2,
        options: opts,
        breaker: BreakerConfig { failure_threshold: 1, base_backoff_ms: 50, max_backoff_ms: 50 },
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);

    // Trip the breaker: one failure suffices at threshold 1.
    let t = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()))
        .expect("closed breaker admits");
    assert!(!t.wait().unwrap().result.converged());
    assert!(matches!(service.breaker_state(&mats[0]), BreakerState::Open { .. }));
    std::thread::sleep(Duration::from_millis(80)); // backoff expires

    // Park the worker on a different fingerprint, then hold the queue at
    // 50% occupancy — Low priority's shed ceiling.
    let parked = service
        .submit(SolveRequest::new(Arc::clone(&mats[1]), rhs_for(mats[1].n_rows(), 1, 0)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker pops it, sleeps its window
    let fillers: Vec<_> = (0..2)
        .map(|i| {
            service
                .submit(SolveRequest::new(Arc::clone(&mats[2]), rhs_for(mats[2].n_rows(), 2, i)))
                .unwrap()
        })
        .collect();

    // The quarantined fingerprint's next request claims the probe slot at
    // the breaker gate, then the occupancy gate sheds it before it is
    // queued.
    let refused = service.submit(
        SolveRequest::new(Arc::clone(&mats[0]), b.clone())
            .policy(RequestPolicy::default().with_priority(Priority::Low)),
    );
    assert!(
        matches!(refused, Err(ServeError::Shed(ShedReason::Occupancy))),
        "Low must shed at 50% occupancy, got {refused:?}"
    );
    assert!(
        matches!(service.breaker_state(&mats[0]), BreakerState::Open { .. }),
        "shed probe left the breaker half-open: the slot leaked"
    );

    // Drain the queue and wait out the (un-doubled) backoff: the next
    // request gets the probe slot and is admitted, not quarantined.
    for t in fillers.into_iter().chain([parked]) {
        t.wait().expect("queued request resolves");
    }
    std::thread::sleep(Duration::from_millis(80));
    let probe = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b).policy(RequestPolicy::default()))
        .expect("released probe slot re-admits after the backoff");
    assert!(!probe.wait().unwrap().result.converged());
}

/// A deadline that expires with zero iterations run is a load problem,
/// not a matrix problem: it must not count as a breaker failure (at
/// threshold 1 it would quarantine a perfectly healthy fingerprint).
#[test]
fn queue_expired_deadline_is_neutral_to_the_breaker() {
    let mats = matrices();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        options: options(),
        breaker: BreakerConfig {
            failure_threshold: 1,
            base_backoff_ms: 60_000,
            max_backoff_ms: 60_000,
        },
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    // High priority with a nanosecond deadline is admitted at the floor
    // and expires in the queue (see expired_deadline_yields_typed_error…).
    let policy = RequestPolicy::default()
        .with_priority(Priority::High)
        .with_deadline(Duration::from_nanos(1));
    let t =
        service.submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(policy)).unwrap();
    assert!(matches!(
        t.wait(),
        Err(ServeError::Solver(SolverError::DeadlineExceeded { iterations: 0, .. }))
    ));
    assert_eq!(
        service.breaker_state(&mats[0]),
        BreakerState::Closed,
        "an expiry that never ran must not trip the breaker"
    );
    let t = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b).policy(RequestPolicy::default()))
        .expect("healthy fingerprint still admitted");
    assert!(t.wait().unwrap().result.converged());
}

/// The neutral-outcome path must also release the probe slot: a probe
/// whose deadline evaporates in the queue told us nothing, so the
/// breaker re-opens (same backoff) instead of sticking half-open.
#[test]
fn expired_probe_releases_the_half_open_slot() {
    let mats = matrices();
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-300).with_max_iters(2),
        ..SpcgOptions::default()
    };
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        batch_limit: 1,
        options: opts,
        breaker: BreakerConfig { failure_threshold: 1, base_backoff_ms: 50, max_backoff_ms: 50 },
        ..ServiceConfig::default()
    });
    let b = rhs_for(mats[0].n_rows(), 0, 0);
    let t = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(RequestPolicy::default()))
        .unwrap();
    assert!(!t.wait().unwrap().result.converged());
    std::thread::sleep(Duration::from_millis(80)); // backoff expires

    // The probe is admitted (High at the floor) but its deadline is gone
    // before the worker reaches it: a neutral outcome.
    let policy = RequestPolicy::default()
        .with_priority(Priority::High)
        .with_deadline(Duration::from_nanos(1));
    let t =
        service.submit(SolveRequest::new(Arc::clone(&mats[0]), b.clone()).policy(policy)).unwrap();
    assert!(matches!(
        t.wait(),
        Err(ServeError::Solver(SolverError::DeadlineExceeded { iterations: 0, .. }))
    ));
    assert!(
        matches!(service.breaker_state(&mats[0]), BreakerState::Open { .. }),
        "expired probe left the breaker half-open: the slot leaked"
    );
    // The slot cycles: after the backoff the fingerprint is probed again.
    std::thread::sleep(Duration::from_millis(80));
    let probe = service
        .submit(SolveRequest::new(Arc::clone(&mats[0]), b).policy(RequestPolicy::default()))
        .expect("released probe slot re-admits after the backoff");
    assert!(!probe.wait().unwrap().result.converged());
}

/// Satellite: shutdown under load. Closing the service with a deep queue
/// must resolve **every** outstanding ticket with a typed outcome — the
/// queue drains through the workers on drop, nothing hangs, and no
/// responder is dropped unanswered. The whole exchange runs under a
/// watchdog so a regression fails the test instead of wedging the suite.
#[test]
fn shutdown_with_deep_queue_resolves_every_ticket() {
    let mats = matrices();
    let opts = options();
    let service = SolveService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        batch_window: Duration::from_millis(20),
        batch_limit: 4,
        options: opts,
        ..ServiceConfig::default()
    });

    // Build a deep queue across several fingerprints, with a few policy
    // submissions (deadlines included) mixed in.
    let mut tickets = Vec::new();
    for i in 0..40 {
        let m = &mats[i % mats.len()];
        let b = rhs_for(m.n_rows(), 7, i);
        let t = if i % 4 == 0 {
            service.submit(
                SolveRequest::new(Arc::clone(m), b).policy(
                    RequestPolicy::default()
                        .with_priority(Priority::High)
                        .with_deadline(Duration::from_secs(30)),
                ),
            )
        } else {
            service.submit(SolveRequest::new(Arc::clone(m), b))
        };
        if let Ok(t) = t {
            tickets.push(t);
        }
    }
    let accepted = tickets.len();
    assert!(accepted >= 30, "the deep queue should accept most submissions");

    // Redeem the tickets on a separate thread while this one drops the
    // service, so closure races active waits.
    let (done_tx, done_rx) = mpsc::channel();
    let redeemer = std::thread::spawn(move || {
        let mut outcomes = 0usize;
        for t in tickets {
            // Every wait must RETURN — Ok or typed Err — never hang.
            match t.wait() {
                Ok(out) => {
                    assert!(out.result.converged());
                    outcomes += 1;
                }
                Err(ServeError::Closed) => panic!("accepted request dropped on shutdown"),
                Err(e) => panic!("unexpected error on shutdown: {e}"),
            }
        }
        done_tx.send(outcomes).unwrap();
    });
    drop(service); // close the queue, drain, join workers
    let outcomes = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("shutdown hung with a deep queue (watchdog fired)");
    assert_eq!(outcomes, accepted, "every accepted request must resolve");
    redeemer.join().unwrap();
}

#[test]
fn coalesced_batch_matches_individual_solves() {
    let mats = matrices();
    let opts = options();
    let plan = SpcgPlan::build(&mats[0], &opts).unwrap();
    let service = SolveService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        batch_window: Duration::from_millis(50),
        batch_limit: 16,
        options: opts,
        ..ServiceConfig::default()
    });
    // Same fingerprint, distinct right-hand sides, submitted while the
    // worker waits out its window: they coalesce into one batch.
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let b = rhs_for(mats[0].n_rows(), 9, i);
            service.submit(SolveRequest::new(Arc::clone(&mats[0]), b)).unwrap()
        })
        .collect();
    let mut max_batch = 0;
    for (i, t) in tickets.into_iter().enumerate() {
        let out = t.wait().unwrap();
        let b = rhs_for(mats[0].n_rows(), 9, i);
        assert_eq!(out.result.x, plan.solve(&b).unwrap().x, "request {i} diverged in a batch");
        max_batch = max_batch.max(out.batch_size);
    }
    assert!(max_batch >= 2, "the admission window should coalesce at least one pair");
    assert!(service.stats().max_batch >= 2);
}
