//! Property tests for the plan-cache invariants:
//!
//! 1. occupancy never exceeds the entry capacity, and resident bytes never
//!    exceed the byte budget (when no single plan is itself over budget);
//! 2. eviction is LRU-consistent — a single-shard cache behaves exactly
//!    like a reference model that evicts the least-recently-touched key;
//! 3. two matrices with identical sparsity but different values never
//!    share a cached plan (the fingerprint's value digest separates them).
//!
//! Plans are built once into a pool (they are the expensive part) and the
//! properties drive random get/insert schedules against them.

use proptest::prelude::*;
use spcg_core::{OrderingKind, PrecisionPolicy, SpcgOptions, SpcgPlan};
use spcg_serve::{CacheConfig, PlanCache, PlanKey};
use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
use spcg_sparse::CsrMatrix;
use std::sync::{Arc, OnceLock};

type Pooled = (PlanKey, Arc<SpcgPlan<f64>>);

/// Eight distinct systems: four different structures, and for two of the
/// structures a same-pattern/different-values twin (scaled copy).
fn pool() -> &'static Vec<Pooled> {
    static POOL: OnceLock<Vec<Pooled>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut mats: Vec<CsrMatrix<f64>> = vec![
            poisson_2d(6, 6),
            poisson_2d(7, 6),
            with_magnitude_spread(&poisson_2d(6, 7), 3.0, 5),
            poisson_2d(8, 7),
        ];
        let twins: Vec<CsrMatrix<f64>> =
            [&mats[0], &mats[2]].iter().map(|m| m.map_values(|v| v * 1.5)).collect();
        mats.extend(twins);
        mats.iter()
            .map(|a| {
                let key = PlanKey::of(a, OrderingKind::Natural, PrecisionPolicy::Full);
                (key, Arc::new(SpcgPlan::build(a, SpcgOptions::default()).unwrap()))
            })
            .collect()
    })
}

/// Reference LRU model over plan keys (single shard, entry capacity).
struct ModelLru {
    /// Most-recent last.
    order: Vec<usize>,
    capacity: usize,
}

impl ModelLru {
    fn touch(&mut self, idx: usize) {
        self.order.retain(|&i| i != idx);
        self.order.push(idx);
    }

    fn insert(&mut self, idx: usize) {
        self.touch(idx);
        if self.order.len() > self.capacity {
            self.order.remove(0);
        }
    }

    fn contains(&self, idx: usize) -> bool {
        self.order.contains(&idx)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Invariant 1 (entries): across any schedule of inserts and gets, with
    /// any shard count, occupancy never exceeds the configured capacity.
    #[test]
    fn occupancy_never_exceeds_capacity(
        shards in 1usize..5,
        capacity in 1usize..7,
        ops in prop::collection::vec((0usize..8, 0usize..2), 1..40),
    ) {
        let pool = pool();
        let cache: PlanCache<f64> =
            PlanCache::new(CacheConfig { shards, capacity, byte_budget: usize::MAX });
        for (pick, op) in ops {
            let (fp, plan) = &pool[pick % pool.len()];
            if op == 0 {
                cache.insert(*fp, Arc::clone(plan));
            } else {
                let _ = cache.get(fp);
            }
            prop_assert!(cache.len() <= capacity,
                "occupancy {} exceeds capacity {capacity}", cache.len());
        }
        let s = cache.stats();
        prop_assert_eq!(s.entries, cache.len());
        prop_assert!(s.insertions >= s.evictions);
    }

    /// Invariant 1 (bytes): whenever each shard's share of the budget is
    /// at least one plan wide (so the documented admit-oversized-alone
    /// exception cannot trigger), resident bytes never exceed the budget.
    #[test]
    fn resident_bytes_never_exceed_budget(
        shards in 1usize..4,
        extra in 0usize..3,
        ops in prop::collection::vec(0usize..8, 1..30),
    ) {
        let pool = pool();
        let widest = pool.iter().map(|(_, p)| p.approx_bytes()).max().unwrap();
        // One plan-width per shard, plus 0–2 widths of headroom.
        let budget = widest * (shards + extra);
        let cache: PlanCache<f64> =
            PlanCache::new(CacheConfig { shards, capacity: pool.len(), byte_budget: budget });
        for pick in ops {
            let (fp, plan) = &pool[pick % pool.len()];
            cache.insert(*fp, Arc::clone(plan));
            prop_assert!(cache.bytes() <= budget,
                "resident {} bytes exceed budget {budget}", cache.bytes());
        }
    }

    /// Invariant 2: a single-shard cache evicts exactly the key a
    /// reference LRU model evicts, for any interleaving of gets and
    /// inserts. (Sharded caches are LRU per shard — the model holds within
    /// each shard; this pins the per-shard policy.)
    #[test]
    fn eviction_is_lru_consistent(
        capacity in 1usize..5,
        ops in prop::collection::vec((0usize..8, 0usize..2), 1..50),
    ) {
        let pool = pool();
        let cache: PlanCache<f64> =
            PlanCache::new(CacheConfig { shards: 1, capacity, byte_budget: usize::MAX });
        let mut model = ModelLru { order: Vec::new(), capacity };
        for (pick, op) in ops {
            let idx = pick % pool.len();
            let (fp, plan) = &pool[idx];
            if op == 0 {
                cache.insert(*fp, Arc::clone(plan));
                model.insert(idx);
            } else {
                let hit = cache.get(fp).is_some();
                prop_assert_eq!(hit, model.contains(idx), "hit/miss diverged from model");
                if hit {
                    model.touch(idx);
                }
            }
            for (i, (fp, _)) in pool.iter().enumerate() {
                prop_assert_eq!(cache.contains(fp), model.contains(i),
                    "residency of pool[{}] diverged from the LRU model", i);
            }
        }
    }

    /// Invariant 3: same-pattern/different-values twins never resolve to
    /// the same cached plan, under any schedule.
    #[test]
    fn value_twins_never_share_plans(
        ops in prop::collection::vec(0usize..8, 1..30),
    ) {
        let pool = pool();
        // pool[4] is a scaled twin of pool[0], pool[5] of pool[2].
        for (a, b) in [(0, 4), (2, 5)] {
            prop_assert!(pool[a].0.fp.same_structure(&pool[b].0.fp));
            prop_assert!(pool[a].0 != pool[b].0);
        }
        let cache: PlanCache<f64> = PlanCache::new(CacheConfig::default());
        for pick in ops {
            let (fp, plan) = &pool[pick % pool.len()];
            cache.insert(*fp, Arc::clone(plan));
        }
        for (a, b) in [(0usize, 4usize), (2, 5)] {
            if let (Some(pa), Some(pb)) = (cache.get(&pool[a].0), cache.get(&pool[b].0)) {
                prop_assert!(!Arc::ptr_eq(&pa, &pb),
                    "twins with different values shared one plan");
                prop_assert!(pa.a().values() != pb.a().values());
            }
        }
    }
}
