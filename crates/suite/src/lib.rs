//! # spcg-suite
//!
//! Deterministic synthetic SPD matrix collection standing in for the
//! SuiteSparse dataset the paper evaluates on: 107 matrices across the 17
//! application categories of Figure 9, plus named stand-ins for the
//! matrices discussed individually (Dubcova1, ecology2, thermal1,
//! Pres_Poisson, thermomech_dM, 2cubes_sphere, Muu).

#![warn(missing_docs)]

pub mod category;
pub mod collection;
pub mod recipes;
pub mod reference;

pub use category::Category;
pub use collection::{env_collection, fast_collection, standard_collection, MatrixSpec};
pub use recipes::{Ordering, Recipe};
