//! Named stand-ins for the SuiteSparse matrices the paper discusses
//! individually (§5.3 profiling and §5.4 condition-number analysis).
//!
//! Each constructor engineers the *mechanism* behind the paper's
//! observation rather than copying the original matrix:
//!
//! * `ecology2_like` / `thermal1_like` — a clean grid operator plus **hub
//!   nodes** with weak, irregular couplings into the grid. The hub
//!   couplings are the smallest-magnitude entries, so magnitude-based
//!   sparsification removes exactly them; this shortens dependence chains
//!   (wavefront reduction) and mechanically lowers the paper's approximate
//!   condition indicator (row sums shrink), reproducing the §5.4
//!   condition-number staircase. The paper's *iteration-count* flips on
//!   the original matrices stem from numerical pathologies of the real
//!   data (see EXPERIMENTS.md for the analysis); with exact-arithmetic
//!   synthetic SPD systems, iterations stay approximately unchanged — the
//!   regime the paper itself reports for ~95% of its dataset.
//! * `pres_poisson_like` — an anisotropic operator whose weak couplings
//!   are *structurally essential*: moderate sparsification only trims a
//!   noise tail, but 10% eats into the essential couplings and convergence
//!   degrades (the paper's non-monotone case).
//! * `thermomech_dM_like`, `two_cubes_sphere_like`, `muu_like` — the §5.3
//!   profiling trio: wavefront-rich (big speedup), latency-bound
//!   (moderate), and wavefront-poor/dense-rows (speedup ≈ 1).

use spcg_sparse::generators as g;
use spcg_sparse::{CooMatrix, CsrMatrix, Rng};

/// One tier of hub nodes: `count` hubs, each with diagonal `hub_diag` and
/// `fanout` couplings of magnitude `c` into random grid nodes.
#[derive(Debug, Clone, Copy)]
pub struct HubTier {
    /// Number of hub nodes in this tier.
    pub count: usize,
    /// Couplings per hub into the grid.
    pub fanout: usize,
    /// Hub diagonal value (small — this is what makes the ILU(0)
    /// multipliers `c / hub_diag` large).
    pub hub_diag: f64,
    /// Coupling magnitude (must be the smallest entries in the matrix so
    /// the sparsifier drops them first).
    pub c: f64,
}

impl HubTier {
    /// Dropped-fill magnitude per neighbour pair, `c²/d_h` — the size of
    /// the ILU(0) error this tier injects.
    pub fn fill_magnitude(&self) -> f64 {
        self.c * self.c / self.hub_diag
    }

    /// Gershgorin-style SPD load each hub puts on the grid after its
    /// elimination: `fanout · c² / d_h` must stay below the grid's
    /// diagonal slack.
    pub fn spd_load(&self) -> f64 {
        self.fanout as f64 * self.fill_magnitude()
    }
}

/// Builds `grid ⊕ hubs`: hub nodes are indexed *first* (so ILU(0)
/// eliminates them first), each coupled to `fanout` random grid nodes. The
/// grid gets a diagonal shift of `grid_slack` to absorb the hubs' Schur
/// load and keep the matrix SPD.
pub fn grid_with_hubs(
    grid: &CsrMatrix<f64>,
    tiers: &[HubTier],
    grid_slack: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    let total_load: f64 = tiers.iter().map(|t| t.spd_load()).sum();
    assert!(
        total_load < grid_slack,
        "hub tiers too strong for SPD: load {total_load} vs slack {grid_slack}"
    );
    let ng = grid.n_rows();
    let nh: usize = tiers.iter().map(|t| t.count).sum();
    let n = ng + nh;
    let mut rng = Rng::new(seed);
    let mut coo = CooMatrix::with_capacity(n, n, grid.nnz() + n + nh * 8);
    // Grid occupies indices nh..n, shifted diagonals.
    for (r, c, v) in grid.iter() {
        let v = if r == c { v + grid_slack } else { v };
        coo.push(nh + r, nh + c, v).expect("in range");
    }
    // Hubs occupy indices 0..nh.
    let mut hub = 0usize;
    for tier in tiers {
        for _ in 0..tier.count {
            coo.push(hub, hub, tier.hub_diag).expect("in range");
            let mut targets: Vec<usize> = Vec::with_capacity(tier.fanout);
            while targets.len() < tier.fanout {
                let t = nh + rng.below(ng);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                // Alternate signs so hub couplings do not act coherently on
                // the constant vector.
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                coo.push_sym(hub, t, sign * tier.c).expect("in range");
            }
            hub += 1;
        }
    }
    coo.to_csr()
}

/// `ecology2`-like: one tier of hub couplings at ≈ 3–4% of nnz, the
/// smallest entries in the matrix. Sparsification at ≥ 5% removes all of
/// them, cutting wavefronts and the approximate condition indicator.
pub fn ecology2_like() -> CsrMatrix<f64> {
    let grid = g::poisson_2d(70, 70);
    // hub_diag ≈ 10·c keeps the dropped couplings benign for M⁻¹A.
    let tiers = [HubTier { count: 180, fanout: 5, hub_diag: 0.08, c: 0.0085 }];
    grid_with_hubs(&grid, &tiers, 0.25, 0xec01)
}

/// `thermal1`-like: three hub tiers with increasing coupling magnitude —
/// the 1% cut removes the faintest tier, 5% the second, 10% the third, so
/// the wavefront count and the condition indicator fall in the paper's
/// staircase pattern.
pub fn thermal1_like() -> CsrMatrix<f64> {
    let grid = g::varcoef_2d(64, 64, 0.9, 1.1, 0x7e10);
    let tiers = [
        HubTier { count: 40, fanout: 4, hub_diag: 0.060, c: 0.0060 },
        HubTier { count: 60, fanout: 4, hub_diag: 0.085, c: 0.0085 },
        HubTier { count: 80, fanout: 4, hub_diag: 0.120, c: 0.0120 },
    ];
    grid_with_hubs(&grid, &tiers, 0.30, 0x7e11)
}

/// `Pres_Poisson`-like: anisotropic pressure operator. The y-couplings are
/// weak (≈ eps) but essential; 10% sparsification starts removing them and
/// convergence degrades, while ≤ 5% only trims the noise tail.
pub fn pres_poisson_like() -> CsrMatrix<f64> {
    // eps couplings: 2*nx*ny of ~5*nx*ny entries ≈ 40% of the matrix, at
    // magnitude 0.08. A separate noise tail of ~3% sits at magnitude 0.02.
    let base = g::anisotropic_2d(60, 60, 0.08);
    let tiers = [HubTier { count: 60, fanout: 3, hub_diag: 0.1, c: 0.02 }];
    grid_with_hubs(&base, &tiers, 0.05, 0x9e50)
}

/// `Dubcova1`-like (Figure 3's example): a heterogeneous FEM operator with
/// a broad magnitude spread, n ≈ 4.4k.
pub fn dubcova1_like() -> CsrMatrix<f64> {
    g::with_magnitude_spread(&g::varcoef_2d(66, 66, 0.2, 2.5, 0xd0b), 6.0, 0xd0c)
}

/// `thermomech_dM`-like: a layered thermo-mechanical operator whose weak
/// interface/noise tiers are ~10% of nnz — the matrix class where
/// sparsification shines (paper: 4.39× speedup, DRAM 4.24% → 6.25%).
pub fn thermomech_dm_like() -> CsrMatrix<f64> {
    let base = g::layered_poisson_2d(150, 64, 5, 1e-4);
    g::add_weak_noise(&base, 0.003, 2e-5, 8e-5, 0x112)
}

/// `2cubes_sphere`-like: 3-D electromagnetics; latency-bound with flat
/// compute utilization and only a mild gain from sparsification.
pub fn two_cubes_sphere_like() -> CsrMatrix<f64> {
    g::add_weak_noise(&g::poisson_3d(22, 22, 22), 0.0004, 2e-5, 8e-5, 0x222)
}

/// `Muu`-like: a mass matrix — dense rows, almost diagonal-dominant, very
/// few wavefronts already; sparsification gains ≈ nothing (paper: 0.99×).
pub fn muu_like() -> CsrMatrix<f64> {
    g::with_magnitude_spread(&g::random_spd(7000, 24, 3.0, 0x333), 2.0, 0x334)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::cond::{lambda_min_est, SpectralOptions};

    #[test]
    fn all_references_are_spd_shaped() {
        for (name, m) in [
            ("ecology2", ecology2_like()),
            ("thermal1", thermal1_like()),
            ("pres_poisson", pres_poisson_like()),
            ("dubcova1", dubcova1_like()),
        ] {
            assert!(m.is_symmetric(1e-12), "{name}");
            assert!(m.has_full_nonzero_diag(), "{name}");
            assert!(m.n_rows() > 1000, "{name}");
        }
    }

    #[test]
    fn hub_matrices_are_positive_definite() {
        let opts = SpectralOptions { cg_iters: 500, ..Default::default() };
        for (name, m) in [("ecology2", ecology2_like()), ("thermal1", thermal1_like())] {
            let lmin = lambda_min_est(&m, &opts);
            assert!(matches!(lmin, Some(l) if l > 0.0), "{name} should be SPD, λ_min = {lmin:?}");
        }
    }

    #[test]
    fn hub_couplings_are_the_smallest_entries() {
        let m = ecology2_like();
        // Hub couplings (|v| = 0.0085) below every grid coupling (|v| = 1).
        let weak = m.iter().filter(|&(r, c, v)| r != c && v.abs() < 0.5).count();
        let frac = weak as f64 / m.nnz() as f64;
        assert!(frac > 0.01 && frac < 0.12, "weak fraction {frac}");
    }

    #[test]
    fn thermal1_tiers_are_magnitude_separated() {
        let m = thermal1_like();
        let mut mags: Vec<f64> = m
            .iter()
            .filter(|&(r, c, v)| r != c && v.abs() < 0.5)
            .map(|(_, _, v)| v.abs())
            .collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        mags.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(mags.len(), 3, "expected exactly three tier magnitudes: {mags:?}");
        assert!(mags[0] < mags[1] && mags[1] < mags[2]);
    }

    #[test]
    fn hub_tier_math() {
        let t = HubTier { count: 10, fanout: 5, hub_diag: 0.002, c: 0.01 };
        assert!((t.fill_magnitude() - 0.05).abs() < 1e-12);
        assert!((t.spd_load() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too strong for SPD")]
    fn overloaded_hubs_are_rejected() {
        let grid = g::poisson_2d(10, 10);
        let tiers = [HubTier { count: 10, fanout: 10, hub_diag: 1e-4, c: 0.05 }];
        let _ = grid_with_hubs(&grid, &tiers, 0.1, 1);
    }

    #[test]
    fn pres_poisson_essential_couplings_sit_above_noise() {
        let m = pres_poisson_like();
        let noise = m.iter().filter(|&(r, c, v)| r != c && v.abs() < 0.05).count();
        let essential =
            m.iter().filter(|&(r, c, v)| r != c && (0.05..0.5).contains(&v.abs())).count();
        let nnz = m.nnz();
        // Noise tail below 5%, essential couplings well above 10%: the 10%
        // cut must bite into them.
        assert!((noise as f64) / (nnz as f64) < 0.05, "noise {noise}/{nnz}");
        assert!((essential as f64) / (nnz as f64) > 0.10, "essential {essential}/{nnz}");
    }

    #[test]
    fn profiling_trio_have_contrasting_structure() {
        use spcg_wavefront::wavefront_count;
        let thermo = thermomech_dm_like();
        let muu = muu_like();
        let w_thermo = wavefront_count(&thermo);
        let w_muu = wavefront_count(&muu);
        // thermomech-like: long dependence chains; Muu-like: shallow.
        assert!(w_thermo > 4 * w_muu, "thermomech wavefronts {w_thermo} vs muu {w_muu}");
    }

    #[test]
    fn references_are_deterministic() {
        assert_eq!(dubcova1_like(), dubcova1_like());
        assert_eq!(ecology2_like(), ecology2_like());
    }
}
