//! The 17 application categories of the paper's Figure 9.

use serde::{Deserialize, Serialize};

/// Application domain a matrix originates from (Figure 9's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Discretized 2-D/3-D problems.
    TwoThreeD,
    /// Acoustics.
    Acoustics,
    /// Circuit simulation.
    CircuitSimulation,
    /// Computational fluid dynamics.
    Cfd,
    /// Computer graphics / vision.
    GraphicsVision,
    /// Counter-example problems (pathological).
    CounterExample,
    /// Duplicate model reduction.
    DuplicateModelReduction,
    /// Duplicate optimization.
    DuplicateOptimization,
    /// Economic modeling.
    Economic,
    /// Electromagnetics.
    Electromagnetics,
    /// Materials science.
    Materials,
    /// Optimization.
    Optimization,
    /// Random 2-D/3-D structures.
    Random2D3D,
    /// Statistical / mathematical.
    StatisticalMathematical,
    /// Structural engineering.
    Structural,
    /// Thermal simulation.
    Thermal,
    /// Power-network problems.
    PowerNetwork,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 17] = [
        Category::TwoThreeD,
        Category::Acoustics,
        Category::CircuitSimulation,
        Category::Cfd,
        Category::GraphicsVision,
        Category::CounterExample,
        Category::DuplicateModelReduction,
        Category::DuplicateOptimization,
        Category::Economic,
        Category::Electromagnetics,
        Category::Materials,
        Category::Optimization,
        Category::Random2D3D,
        Category::StatisticalMathematical,
        Category::Structural,
        Category::Thermal,
        Category::PowerNetwork,
    ];

    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            Category::TwoThreeD => "2D/3D",
            Category::Acoustics => "acoustics",
            Category::CircuitSimulation => "circuit simulation",
            Category::Cfd => "computational fluid dynamics",
            Category::GraphicsVision => "computer graphics/vision",
            Category::CounterExample => "counter-example",
            Category::DuplicateModelReduction => "duplicate model reduction",
            Category::DuplicateOptimization => "duplicate optimization",
            Category::Economic => "economic",
            Category::Electromagnetics => "electromagnetics",
            Category::Materials => "materials",
            Category::Optimization => "optimization",
            Category::Random2D3D => "random 2D/3D",
            Category::StatisticalMathematical => "statistical/mathematical",
            Category::Structural => "structural",
            Category::Thermal => "thermal",
            Category::PowerNetwork => "power network",
        }
    }

    /// A stable small integer id (used to derive deterministic seeds).
    pub fn id(&self) -> u64 {
        Category::ALL.iter().position(|c| c == self).expect("category in ALL") as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_categories() {
        assert_eq!(Category::ALL.len(), 17);
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let mut ids: Vec<u64> = Category::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..17).collect::<Vec<_>>());
        assert_eq!(Category::TwoThreeD.id(), 0);
        assert_eq!(Category::PowerNetwork.id(), 16);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 17);
    }
}
