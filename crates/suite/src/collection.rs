//! The 107-matrix synthetic collection standing in for the paper's
//! SuiteSparse SPD dataset.
//!
//! Every matrix is deterministic (seeded from its category and index), SPD
//! by construction, has n ≥ 1000 (the paper's size floor), and the
//! collection spans the evaluation's axes: nnz across three orders of
//! magnitude, wavefront-rich banded orderings vs wavefront-poor scrambled
//! ones, and well- vs ill-conditioned systems.

use crate::category::Category;
use crate::recipes::{Ordering, Recipe};
use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, Rng};

/// Specification of one suite matrix (build it with [`MatrixSpec::build`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixSpec {
    /// Unique name, e.g. `"thermal_03"`.
    pub name: String,
    /// Application category.
    pub category: Category,
    /// Structural recipe.
    pub recipe: Recipe,
    /// Magnitude-spread factor applied to the base matrix.
    pub spread: f64,
    /// Ordering applied after generation.
    pub ordering: Ordering,
    /// Deterministic seed.
    pub seed: u64,
}

impl MatrixSpec {
    /// Materializes the matrix.
    pub fn build(&self) -> CsrMatrix<f64> {
        self.recipe.build(self.seed, self.spread, self.ordering)
    }

    /// Deterministic right-hand side for this matrix.
    pub fn rhs(&self, n: usize) -> Vec<f64> {
        let mut rng = Rng::new(self.seed ^ 0xb5b5_b5b5);
        (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
    }
}

fn seed_for(cat: Category, idx: usize) -> u64 {
    0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(cat.id() + 1)
        .wrapping_add(idx as u64 * 0x1234_5678_9abc_def1)
}

/// Per-category matrix definitions: (recipe, spread, ordering) per entry.
fn category_entries(cat: Category) -> Vec<(Recipe, f64, Ordering)> {
    use Category as C;
    use Ordering::*;
    use Recipe::*;
    match cat {
        C::TwoThreeD => vec![
            (Layered2D { nx: 32, ny: 32, period: 4, weak: 1e-4 }, 1.5, Natural),
            (Poisson2D { nx: 48, ny: 48 }, 5.0, Natural),
            (Layered2D { nx: 64, ny: 64, period: 5, weak: 1e-4 }, 1.5, Natural),
            (Poisson2D { nx: 96, ny: 96 }, 6.0, Natural),
            (Layered3D { nx: 12, ny: 12, nz: 12, period: 4, weak: 1e-4 }, 1.5, Natural),
            (Poisson3D { nx: 14, ny: 14, nz: 14 }, 5.0, Natural),
            (Layered3D { nx: 18, ny: 18, nz: 18, period: 5, weak: 1e-4 }, 1.5, Natural),
            (Poisson2D { nx: 128, ny: 64 }, 5.0, Rcm),
        ],
        C::Acoustics => vec![
            (Stencil9 { nx: 34, ny: 34 }, 5.0, Natural),
            (Stencil9 { nx: 48, ny: 48 }, 4.0, Natural),
            (Layered2D { nx: 64, ny: 48, period: 4, weak: 1e-4 }, 1.5, Natural),
            (Stencil9 { nx: 80, ny: 50 }, 5.0, Rcm),
            (Layered3D { nx: 12, ny: 12, nz: 12, period: 3, weak: 1e-4 }, 1.5, Natural),
        ],
        C::CircuitSimulation => vec![
            (Banded { n: 1200, band: 2, density: 0.9, dominance: 1.6 }, 1.0, Natural),
            (Banded { n: 2500, band: 3, density: 0.8, dominance: 1.5 }, 1.0, Natural),
            (Banded { n: 5000, band: 2, density: 0.85, dominance: 1.7 }, 1.0, Natural),
            (Banded { n: 9000, band: 4, density: 0.7, dominance: 1.5 }, 1.0, Natural),
            (GraphLaplacian { n: 15000, degree: 3, shift: 0.9 }, 1.0, Scrambled),
            (GraphLaplacian { n: 3000, degree: 6, shift: 0.5 }, 1.0, Natural),
            (Banded { n: 7000, band: 3, density: 0.75, dominance: 1.6 }, 1.0, Natural),
        ],
        C::Cfd => vec![
            (Layered2D { nx: 40, ny: 40, period: 5, weak: 1e-4 }, 1.5, Natural),
            (Anisotropic { nx: 56, ny: 56, eps: 0.05 }, 1.0, Natural),
            (Layered2D { nx: 72, ny: 72, period: 5, weak: 1e-4 }, 1.5, Natural),
            (Anisotropic { nx: 96, ny: 48, eps: 0.1 }, 1.0, Natural),
            (Anisotropic { nx: 120, ny: 60, eps: 0.01 }, 1.0, Natural),
            (Poisson2D { nx: 84, ny: 84 }, 6.0, Natural),
            (Anisotropic { nx: 64, ny: 64, eps: 0.005 }, 1.0, Rcm),
        ],
        C::GraphicsVision => vec![
            (Stencil9 { nx: 40, ny: 40 }, 6.0, Natural),
            (Stencil9 { nx: 56, ny: 56 }, 7.0, Natural),
            (Layered2D { nx: 72, ny: 72, period: 4, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 48, ny: 48, lo: 0.2, hi: 3.0 }, 1.0, Natural),
            (VarCoef { nx: 90, ny: 45, lo: 0.1, hi: 2.0 }, 1.0, Natural),
            (Stencil9 { nx: 100, ny: 50 }, 5.0, Rcm),
        ],
        C::CounterExample => vec![
            (RandomSpd { n: 1100, nnz_per_row: 5, dominance: 1.05 }, 2.0, Natural),
            (RandomSpd { n: 2200, nnz_per_row: 6, dominance: 1.04 }, 2.0, Scrambled),
            (Banded { n: 3000, band: 8, density: 0.5, dominance: 1.03 }, 2.0, Natural),
            (RandomSpd { n: 4500, nnz_per_row: 4, dominance: 1.06 }, 3.0, Natural),
            (Banded { n: 1500, band: 20, density: 0.3, dominance: 1.05 }, 2.0, Scrambled),
        ],
        C::DuplicateModelReduction => vec![
            (Banded { n: 1400, band: 3, density: 0.95, dominance: 2.0 }, 4.0, Natural),
            (Banded { n: 2800, band: 4, density: 0.9, dominance: 1.8 }, 4.0, Natural),
            (Banded { n: 5600, band: 3, density: 0.95, dominance: 2.2 }, 5.0, Natural),
            (Banded { n: 9000, band: 5, density: 0.85, dominance: 1.9 }, 4.0, Natural),
            (Banded { n: 12000, band: 4, density: 0.9, dominance: 2.0 }, 5.0, Natural),
        ],
        C::DuplicateOptimization => vec![
            (RandomSpd { n: 1300, nnz_per_row: 6, dominance: 1.6 }, 3.0, Natural),
            (RandomSpd { n: 2600, nnz_per_row: 7, dominance: 1.5 }, 3.0, Natural),
            (RandomSpd { n: 5200, nnz_per_row: 6, dominance: 1.7 }, 4.0, Natural),
            (Banded { n: 4000, band: 12, density: 0.4, dominance: 1.6 }, 3.0, Natural),
            (RandomSpd { n: 8000, nnz_per_row: 5, dominance: 1.5 }, 3.0, Scrambled),
            (Banded { n: 10000, band: 10, density: 0.5, dominance: 1.8 }, 4.0, Natural),
        ],
        C::Economic => vec![
            (Banded { n: 1500, band: 2, density: 0.95, dominance: 1.8 }, 1.0, Natural),
            (Banded { n: 3200, band: 3, density: 0.85, dominance: 1.6 }, 1.0, Natural),
            (Banded { n: 6400, band: 2, density: 0.9, dominance: 1.7 }, 1.0, Natural),
            (GraphLaplacian { n: 12000, degree: 2, shift: 1.1 }, 1.0, Scrambled),
            (RandomSpd { n: 2000, nnz_per_row: 3, dominance: 2.5 }, 3.0, Scrambled),
            (Banded { n: 4800, band: 3, density: 0.9, dominance: 1.9 }, 1.0, Natural),
        ],
        C::Electromagnetics => vec![
            (Layered3D { nx: 11, ny: 10, nz: 10, period: 3, weak: 1e-4 }, 1.5, Natural),
            (Poisson3D { nx: 13, ny: 13, nz: 13 }, 5.0, Natural),
            (Layered3D { nx: 16, ny: 16, nz: 16, period: 4, weak: 1e-4 }, 1.5, Natural),
            (Poisson3D { nx: 20, ny: 20, nz: 20 }, 6.0, Natural),
            (Stencil9 { nx: 60, ny: 60 }, 5.0, Natural),
            (Poisson3D { nx: 24, ny: 16, nz: 12 }, 5.0, Rcm),
        ],
        C::Materials => vec![
            (Layered2D { nx: 36, ny: 36, period: 3, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 52, ny: 52, lo: 0.1, hi: 10.0 }, 1.0, Natural),
            (Layered2D { nx: 70, ny: 70, period: 5, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 96, ny: 64, lo: 0.2, hi: 6.0 }, 1.0, Natural),
            (VarCoef { nx: 110, ny: 55, lo: 0.1, hi: 4.0 }, 1.0, Rcm),
            (VarCoef { nx: 44, ny: 44, lo: 0.01, hi: 12.0 }, 1.0, Natural),
        ],
        C::Optimization => vec![
            (RandomSpd { n: 1100, nnz_per_row: 8, dominance: 1.4 }, 4.0, Natural),
            (RandomSpd { n: 2300, nnz_per_row: 9, dominance: 1.3 }, 4.0, Natural),
            (RandomSpd { n: 4700, nnz_per_row: 8, dominance: 1.5 }, 5.0, Natural),
            (Banded { n: 3500, band: 16, density: 0.35, dominance: 1.4 }, 4.0, Natural),
            (Banded { n: 7000, band: 14, density: 0.4, dominance: 1.3 }, 4.0, Scrambled),
            (RandomSpd { n: 9500, nnz_per_row: 7, dominance: 1.4 }, 4.0, Natural),
            (RandomSpd { n: 14000, nnz_per_row: 6, dominance: 1.5 }, 5.0, Natural),
        ],
        C::Random2D3D => vec![
            (RandomSpd { n: 1024, nnz_per_row: 5, dominance: 1.8 }, 3.0, Natural),
            (RandomSpd { n: 2048, nnz_per_row: 5, dominance: 1.7 }, 3.0, Scrambled),
            (RandomSpd { n: 4096, nnz_per_row: 6, dominance: 1.9 }, 4.0, Natural),
            (RandomSpd { n: 8192, nnz_per_row: 5, dominance: 1.8 }, 3.0, Scrambled),
            (RandomSpd { n: 16384, nnz_per_row: 4, dominance: 1.7 }, 3.0, Natural),
            (GraphLaplacian { n: 3000, degree: 5, shift: 0.6 }, 1.0, Natural),
            (GraphLaplacian { n: 6000, degree: 5, shift: 0.7 }, 1.0, Scrambled),
        ],
        C::StatisticalMathematical => vec![
            (Banded { n: 1200, band: 30, density: 0.6, dominance: 1.5 }, 5.0, Natural),
            (Banded { n: 2400, band: 40, density: 0.5, dominance: 1.4 }, 5.0, Natural),
            (Banded { n: 4800, band: 25, density: 0.6, dominance: 1.6 }, 6.0, Natural),
            (Banded { n: 8000, band: 35, density: 0.4, dominance: 1.5 }, 5.0, Natural),
            (RandomSpd { n: 3600, nnz_per_row: 12, dominance: 1.4 }, 5.0, Natural),
            (RandomSpd { n: 7200, nnz_per_row: 10, dominance: 1.5 }, 5.0, Natural),
        ],
        C::Structural => vec![
            (Layered2D { nx: 36, ny: 36, period: 3, weak: 1e-4 }, 1.5, Natural),
            (Stencil9 { nx: 52, ny: 52 }, 5.0, Natural),
            (Stencil9 { nx: 44, ny: 44 }, 4.0, Natural),
            (VarCoef { nx: 64, ny: 64, lo: 0.4, hi: 2.5 }, 1.0, Natural),
            (Layered2D { nx: 84, ny: 84, period: 5, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 100, ny: 100, lo: 0.5, hi: 3.0 }, 1.0, Natural),
            (Stencil9 { nx: 70, ny: 70 }, 5.0, Rcm),
        ],
        C::Thermal => vec![
            (Layered2D { nx: 34, ny: 34, period: 3, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 50, ny: 50, lo: 0.2, hi: 2.0 }, 1.0, Natural),
            (Layered2D { nx: 68, ny: 68, period: 5, weak: 1e-4 }, 1.5, Natural),
            (VarCoef { nx: 88, ny: 88, lo: 0.25, hi: 2.2 }, 1.0, Natural),
            (Poisson2D { nx: 60, ny: 60 }, 7.0, Natural),
            (Poisson2D { nx: 90, ny: 90 }, 6.0, Natural),
            (VarCoef { nx: 120, ny: 80, lo: 0.3, hi: 1.6 }, 1.0, Natural),
            (Layered3D { nx: 15, ny: 15, nz: 15, period: 4, weak: 1e-4 }, 1.5, Natural),
        ],
        C::PowerNetwork => vec![
            (Banded { n: 1800, band: 2, density: 0.9, dominance: 1.7 }, 1.0, Natural),
            (GraphLaplacian { n: 3600, degree: 5, shift: 0.8 }, 1.0, Scrambled),
            (Banded { n: 7200, band: 3, density: 0.8, dominance: 1.6 }, 1.0, Natural),
            (GraphLaplacian { n: 11000, degree: 6, shift: 0.7 }, 1.0, Scrambled),
            (GraphLaplacian { n: 16000, degree: 4, shift: 0.9 }, 1.0, Rcm),
        ],
    }
}

fn short_name(cat: Category) -> &'static str {
    match cat {
        Category::TwoThreeD => "grid",
        Category::Acoustics => "acoustic",
        Category::CircuitSimulation => "circuit",
        Category::Cfd => "cfd",
        Category::GraphicsVision => "graphics",
        Category::CounterExample => "counter",
        Category::DuplicateModelReduction => "modelred",
        Category::DuplicateOptimization => "dupopt",
        Category::Economic => "econ",
        Category::Electromagnetics => "em",
        Category::Materials => "material",
        Category::Optimization => "opt",
        Category::Random2D3D => "random",
        Category::StatisticalMathematical => "stat",
        Category::Structural => "struct",
        Category::Thermal => "thermal",
        Category::PowerNetwork => "power",
    }
}

/// The full 107-matrix collection.
pub fn standard_collection() -> Vec<MatrixSpec> {
    let mut out = Vec::with_capacity(107);
    for &cat in &Category::ALL {
        for (idx, (recipe, spread, ordering)) in category_entries(cat).into_iter().enumerate() {
            out.push(MatrixSpec {
                name: format!("{}_{:02}", short_name(cat), idx),
                category: cat,
                recipe,
                spread,
                ordering,
                seed: seed_for(cat, idx),
            });
        }
    }
    out
}

/// A deterministic ~quarter-size subset for quick runs (`SPCG_FAST=1`).
pub fn fast_collection() -> Vec<MatrixSpec> {
    standard_collection()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == 0)
        .map(|(_, s)| s)
        .collect()
}

/// Honors the `SPCG_FAST` environment variable: full collection by default,
/// quarter subset when set to a non-`0` value.
pub fn env_collection() -> Vec<MatrixSpec> {
    match std::env::var("SPCG_FAST") {
        Ok(v) if v != "0" && !v.is_empty() => fast_collection(),
        _ => standard_collection(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_107_matrices() {
        assert_eq!(standard_collection().len(), 107);
    }

    #[test]
    fn names_are_unique() {
        let specs = standard_collection();
        let names: std::collections::HashSet<&str> =
            specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn every_category_is_represented() {
        let specs = standard_collection();
        for &cat in &Category::ALL {
            assert!(specs.iter().any(|s| s.category == cat), "category {cat:?} missing");
        }
    }

    #[test]
    fn all_specs_meet_size_floor() {
        // n > 1000 per the paper's selection criterion (checked on a sample
        // of built matrices; the rest by recipe arithmetic).
        for spec in fast_collection() {
            let m = spec.build();
            assert!(m.n_rows() > 1000, "{} has n = {}", spec.name, m.n_rows());
            assert!(m.is_symmetric(1e-12), "{} not symmetric", spec.name);
            assert!(m.has_full_nonzero_diag(), "{} diagonal broken", spec.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = &standard_collection()[5];
        assert_eq!(spec.build(), spec.build());
        let r1 = spec.rhs(100);
        let r2 = spec.rhs(100);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fast_subset_is_quarter_sized() {
        let fast = fast_collection();
        assert_eq!(fast.len(), 27);
        let std = standard_collection();
        assert_eq!(fast[0], std[0]);
        assert_eq!(fast[1], std[4]);
    }

    #[test]
    fn nnz_spans_orders_of_magnitude() {
        let specs = standard_collection();
        // Estimate nnz from recipes to avoid building everything.
        let nnz_est = |s: &MatrixSpec| -> usize {
            match s.recipe {
                Recipe::Poisson2D { nx, ny } => 5 * nx * ny,
                Recipe::Poisson3D { nx, ny, nz } => 7 * nx * ny * nz,
                Recipe::Anisotropic { nx, ny, .. } => 5 * nx * ny,
                Recipe::Stencil9 { nx, ny } => 9 * nx * ny,
                Recipe::VarCoef { nx, ny, .. } => 5 * nx * ny,
                Recipe::GraphLaplacian { n, degree, .. } => n * (degree + 1),
                Recipe::Banded { n, band, density, .. } => {
                    n + (2.0 * n as f64 * band as f64 * density) as usize
                }
                Recipe::RandomSpd { n, nnz_per_row, .. } => n * (nnz_per_row + 1),
                Recipe::Layered2D { nx, ny, .. } => 5 * nx * ny,
                Recipe::Layered3D { nx, ny, nz, .. } => 7 * nx * ny * nz,
            }
        };
        let min = specs.iter().map(&nnz_est).min().unwrap();
        let max = specs.iter().map(nnz_est).max().unwrap();
        assert!(min < 10_000, "min nnz {min}");
        assert!(max > 100_000, "max nnz {max}");
    }
}
