//! Generator recipes: how each synthetic matrix is constructed.

use serde::{Deserialize, Serialize};
use spcg_sparse::generators as g;
use spcg_sparse::permute::{reverse_cuthill_mckee, scrambled_perm};
use spcg_sparse::CsrMatrix;

/// Base structure of a suite matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Recipe {
    /// 5-point 2-D Poisson grid.
    Poisson2D {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// 7-point 3-D Poisson grid.
    Poisson3D {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Grid depth.
        nz: usize,
    },
    /// Anisotropic 2-D diffusion with y-coupling `eps`.
    Anisotropic {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// y-direction coupling strength.
        eps: f64,
    },
    /// 9-point 2-D stencil.
    Stencil9 {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// Variable-coefficient 2-D diffusion with weights in `[lo, hi]`.
    VarCoef {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Minimum edge weight.
        lo: f64,
        /// Maximum edge weight.
        hi: f64,
    },
    /// Shifted random-graph Laplacian.
    GraphLaplacian {
        /// Dimension.
        n: usize,
        /// Average vertex degree.
        degree: usize,
        /// Diagonal shift (SPD margin).
        shift: f64,
    },
    /// Random banded diagonally dominant SPD.
    Banded {
        /// Dimension.
        n: usize,
        /// Half bandwidth.
        band: usize,
        /// In-band fill density.
        density: f64,
        /// Diagonal-dominance factor (>1).
        dominance: f64,
    },
    /// Random unstructured diagonally dominant SPD.
    RandomSpd {
        /// Dimension.
        n: usize,
        /// Expected off-diagonal entries per row.
        nnz_per_row: usize,
        /// Diagonal-dominance factor (>1).
        dominance: f64,
    },
    /// 2-D Poisson with weak couplings between `period`-line layers
    /// (layered media — the wavefront-rich sparsification target).
    Layered2D {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Layer thickness in grid lines.
        period: usize,
        /// Interface coupling magnitude.
        weak: f64,
    },
    /// 3-D Poisson with weak couplings between `period`-thick slabs.
    Layered3D {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Grid depth.
        nz: usize,
        /// Slab thickness in grid planes.
        period: usize,
        /// Interface coupling magnitude.
        weak: f64,
    },
}

/// Row/column ordering applied after generation — this is what controls how
/// wavefront-rich the lower triangle is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ordering {
    /// Keep the generator's natural (usually banded) order.
    Natural,
    /// Reverse Cuthill–McKee (bandwidth-minimizing).
    Rcm,
    /// Deterministic random permutation (destroys banding; irregular
    /// dependence structure like circuit/economics matrices).
    Scrambled,
}

impl Recipe {
    /// Builds the base matrix (before spread/ordering).
    pub fn build_base(&self, seed: u64) -> CsrMatrix<f64> {
        match *self {
            Recipe::Poisson2D { nx, ny } => g::poisson_2d(nx, ny),
            Recipe::Poisson3D { nx, ny, nz } => g::poisson_3d(nx, ny, nz),
            Recipe::Anisotropic { nx, ny, eps } => g::anisotropic_2d(nx, ny, eps),
            Recipe::Stencil9 { nx, ny } => g::stencil9_2d(nx, ny),
            Recipe::VarCoef { nx, ny, lo, hi } => g::varcoef_2d(nx, ny, lo, hi, seed),
            Recipe::GraphLaplacian { n, degree, shift } => {
                g::graph_laplacian(n, degree, shift, seed)
            }
            Recipe::Banded { n, band, density, dominance } => {
                g::banded_spd(n, band, density, dominance, seed)
            }
            Recipe::RandomSpd { n, nnz_per_row, dominance } => {
                g::random_spd(n, nnz_per_row, dominance, seed)
            }
            Recipe::Layered2D { nx, ny, period, weak } => {
                g::layered_poisson_2d(nx, ny, period, weak)
            }
            Recipe::Layered3D { nx, ny, nz, period, weak } => {
                g::layered_poisson_3d(nx, ny, nz, period, weak)
            }
        }
    }

    /// Builds the finished matrix: base structure, magnitude spread (so
    /// magnitude-based sparsification has a meaningful tail of relatively
    /// weak entries), then the chosen ordering.
    ///
    /// Grid stencils use *directional* weakening (cross-line couplings get
    /// the weak weights) because that is where real discretizations hide
    /// their droppable entries; other structures use uniform per-edge
    /// spread.
    pub fn build(&self, seed: u64, spread: f64, ordering: Ordering) -> CsrMatrix<f64> {
        let base = self.build_base(seed);
        // Layered matrices additionally carry a far-field noise tail, below
        // the interface magnitudes, so the candidate drop ratios peel off
        // noise → interfaces without ever touching real couplings.
        let base = match *self {
            Recipe::Layered2D { period, .. } | Recipe::Layered3D { period, .. } => {
                // Size the noise tail so noise + interfaces ≈ 10.5% of nnz:
                // the 10% drop ratio then removes exactly the weak tiers and
                // never bites into real couplings.
                let interface_frac = 2.0 / (5.0 * period as f64);
                let noise_frac = (0.105 - interface_frac).max(0.02);
                g::add_weak_noise(&base, noise_frac, 2e-5, 8e-5, seed ^ 0x33aa)
            }
            _ => base,
        };
        let spreaded = if spread > 1.0 {
            match *self {
                Recipe::Poisson2D { .. } | Recipe::Poisson3D { .. } | Recipe::Stencil9 { .. } => {
                    g::weaken_long_edges(&base, 2, spread, seed ^ 0x5f5f)
                }
                Recipe::Layered2D { .. } | Recipe::Layered3D { .. } => base,
                _ => g::with_magnitude_spread(&base, spread, seed ^ 0x5f5f),
            }
        } else {
            base
        };
        // Every non-layered, non-anisotropic family carries a numerically
        // negligible junk tail (~9% of edges at 1e-5..1e-4 relative), as
        // real assembled matrices do: dropping it is numerically free but
        // structurally meaningful. Anisotropic operators are left as the
        // cautionary case whose weak couplings ARE essential (§5.4's
        // Pres_Poisson), and layered recipes already carry their own tail.
        let spreaded = match *self {
            Recipe::Layered2D { .. } | Recipe::Layered3D { .. } | Recipe::Anisotropic { .. } => {
                spreaded
            }
            _ => g::with_weak_tail(&spreaded, 0.105, 1e-5, 1e-4, seed ^ 0x1199),
        };
        match ordering {
            Ordering::Natural => spreaded,
            Ordering::Rcm => {
                let p = reverse_cuthill_mckee(&spreaded);
                spreaded.permute_sym(&p).expect("RCM produces a valid permutation")
            }
            Ordering::Scrambled => {
                let p = scrambled_perm(spreaded.n_rows(), seed ^ 0xa5a5);
                spreaded.permute_sym(&p).expect("scramble is a valid permutation")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_recipes_build_spd_like_matrices() {
        let recipes = [
            Recipe::Poisson2D { nx: 8, ny: 8 },
            Recipe::Poisson3D { nx: 4, ny: 4, nz: 4 },
            Recipe::Anisotropic { nx: 8, ny: 8, eps: 0.05 },
            Recipe::Stencil9 { nx: 8, ny: 8 },
            Recipe::VarCoef { nx: 8, ny: 8, lo: 0.5, hi: 2.0 },
            Recipe::GraphLaplacian { n: 64, degree: 4, shift: 0.5 },
            Recipe::Banded { n: 64, band: 4, density: 0.7, dominance: 1.5 },
            Recipe::RandomSpd { n: 64, nnz_per_row: 4, dominance: 1.4 },
        ];
        for r in &recipes {
            let m = r.build(42, 4.0, Ordering::Natural);
            assert!(m.is_square(), "{r:?}");
            assert!(m.is_symmetric(1e-12), "{r:?}");
            assert!(m.has_full_nonzero_diag(), "{r:?}");
        }
    }

    #[test]
    fn ordering_changes_structure_not_values() {
        let r = Recipe::Poisson2D { nx: 10, ny: 10 };
        let nat = r.build(1, 3.0, Ordering::Natural);
        let scr = r.build(1, 3.0, Ordering::Scrambled);
        assert_eq!(nat.nnz(), scr.nnz());
        assert!(scr.bandwidth() > nat.bandwidth());
        // Same multiset of values.
        let mut v1: Vec<u64> = nat.values().iter().map(|v| v.to_bits()).collect();
        let mut v2: Vec<u64> = scr.values().iter().map(|v| v.to_bits()).collect();
        v1.sort_unstable();
        v2.sort_unstable();
        assert_eq!(v1, v2);
    }

    #[test]
    fn rcm_restores_banding_of_scrambled_matrix() {
        let r = Recipe::Banded { n: 100, band: 3, density: 0.9, dominance: 2.0 };
        let scr = r.build(2, 1.0, Ordering::Scrambled);
        let p = spcg_sparse::permute::reverse_cuthill_mckee(&scr);
        let rcm = scr.permute_sym(&p).unwrap();
        assert!(rcm.bandwidth() < scr.bandwidth());
    }

    #[test]
    fn deterministic_builds() {
        let r = Recipe::GraphLaplacian { n: 50, degree: 4, shift: 0.5 };
        assert_eq!(r.build(7, 2.0, Ordering::Scrambled), r.build(7, 2.0, Ordering::Scrambled));
        assert_ne!(r.build(7, 2.0, Ordering::Scrambled), r.build(8, 2.0, Ordering::Scrambled));
    }
}
