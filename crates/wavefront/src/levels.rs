//! Level scheduling: partitioning the dependence DAG into wavefronts.
//!
//! Each level contains rows whose dependences are all satisfied by earlier
//! levels; rows inside a level are independent and can run in parallel, with
//! a barrier between levels (the dashed lines of Figure 1c).

use crate::dag::{DependenceDag, Triangle};
use spcg_sparse::{CsrMatrix, Scalar};

/// A level schedule (wavefront partition) for one triangular solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    triangle: Triangle,
    /// `levels[k]` lists the rows executed in wavefront `k`, ascending.
    levels: Vec<Vec<usize>>,
    /// `row_level[i]` is the wavefront index of row `i`.
    row_level: Vec<usize>,
}

impl LevelSchedule {
    /// Computes the schedule for the chosen triangle of `a` in a single
    /// linear sweep (dependences always point towards the sweep direction in
    /// a triangular matrix, so no worklist is needed).
    pub fn build<T: Scalar>(a: &CsrMatrix<T>, triangle: Triangle) -> Self {
        assert!(a.is_square(), "level schedule requires a square matrix");
        let n = a.n_rows();
        let mut row_level = vec![0usize; n];
        let mut n_levels = 0usize;
        match triangle {
            Triangle::Lower => {
                for i in 0..n {
                    let mut lvl = 0;
                    for &j in a.row_cols(i) {
                        if j < i {
                            lvl = lvl.max(row_level[j] + 1);
                        }
                    }
                    row_level[i] = lvl;
                    n_levels = n_levels.max(lvl + 1);
                }
            }
            Triangle::Upper => {
                for i in (0..n).rev() {
                    let mut lvl = 0;
                    for &j in a.row_cols(i) {
                        if j > i {
                            lvl = lvl.max(row_level[j] + 1);
                        }
                    }
                    row_level[i] = lvl;
                    n_levels = n_levels.max(lvl + 1);
                }
            }
        }
        if n == 0 {
            return Self { triangle, levels: Vec::new(), row_level };
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); n_levels];
        for i in 0..n {
            levels[row_level[i]].push(i);
        }
        Self { triangle, levels, row_level }
    }

    /// Number of wavefronts.
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// The triangle this schedule was built for.
    #[inline]
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Rows of wavefront `k`.
    #[inline]
    pub fn level(&self, k: usize) -> &[usize] {
        &self.levels[k]
    }

    /// All wavefronts.
    #[inline]
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Wavefront index of each row.
    #[inline]
    pub fn row_levels(&self) -> &[usize] {
        &self.row_level
    }

    /// Total number of rows scheduled.
    pub fn n_rows(&self) -> usize {
        self.row_level.len()
    }

    /// Rows in the widest wavefront.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean rows per wavefront.
    pub fn mean_width(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.n_rows() as f64 / self.n_levels() as f64
        }
    }

    /// Flattened execution order (level by level) — a valid topological
    /// order of the dependence DAG.
    pub fn execution_order(&self) -> Vec<usize> {
        self.levels.iter().flatten().copied().collect()
    }

    /// Validates the schedule against a freshly built DAG: every row
    /// scheduled exactly once, and every dependence crosses levels forward.
    pub fn validate<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        let dag = DependenceDag::build(a, self.triangle);
        if dag.n_rows() != self.n_rows() {
            return false;
        }
        if !dag.is_topological(&self.execution_order()) {
            return false;
        }
        (0..self.n_rows())
            .all(|i| dag.predecessors(i).iter().all(|&j| self.row_level[j] < self.row_level[i]))
    }
}

/// Number of wavefronts in the lower triangle of `a` — the `w_A` quantity of
/// Algorithm 2 line 1.
pub fn wavefront_count<T: Scalar>(a: &CsrMatrix<T>) -> usize {
    LevelSchedule::build(a, Triangle::Lower).n_levels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_2d;
    use spcg_sparse::CooMatrix;

    fn figure1() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0), (2, 2), (3, 0), (3, 2), (3, 3)] {
            coo.push(r, c, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn figure1_levels() {
        let s = LevelSchedule::build(&figure1(), Triangle::Lower);
        assert_eq!(s.n_levels(), 3);
        assert_eq!(s.level(0), &[0, 1]);
        assert_eq!(s.level(1), &[2]);
        assert_eq!(s.level(2), &[3]);
        assert!(s.validate(&figure1()));
    }

    #[test]
    fn figure1_sparsified_has_two_levels() {
        let sp = figure1().filter(|r, c, _| !(r == 3 && c == 2));
        let s = LevelSchedule::build(&sp, Triangle::Lower);
        assert_eq!(s.n_levels(), 2);
        assert_eq!(s.level(0), &[0, 1]);
        assert_eq!(s.level(1), &[2, 3]);
    }

    #[test]
    fn level_count_matches_dag_critical_path() {
        let a = poisson_2d(7, 6);
        let s = LevelSchedule::build(&a, Triangle::Lower);
        let dag = DependenceDag::build(&a, Triangle::Lower);
        assert_eq!(s.n_levels(), dag.critical_path_len());
        assert!(s.validate(&a));
    }

    #[test]
    fn upper_schedule_mirrors_lower_for_symmetric_structure() {
        let a = poisson_2d(5, 5);
        let lo = LevelSchedule::build(&a, Triangle::Lower);
        let up = LevelSchedule::build(&a, Triangle::Upper);
        assert_eq!(lo.n_levels(), up.n_levels());
        assert!(up.validate(&a));
    }

    #[test]
    fn poisson2d_wavefronts_follow_antidiagonals() {
        // On an n x n 5-point grid the lower-triangular dependences walk
        // one step right/down, so wavefronts are the 2n-1 antidiagonals.
        let a = poisson_2d(6, 6);
        assert_eq!(wavefront_count(&a), 11);
    }

    #[test]
    fn diagonal_matrix_single_level() {
        let d = CsrMatrix::<f64>::identity(5);
        let s = LevelSchedule::build(&d, Triangle::Lower);
        assert_eq!(s.n_levels(), 1);
        assert_eq!(s.max_width(), 5);
        assert_eq!(s.mean_width(), 5.0);
    }

    #[test]
    fn dense_lower_triangle_is_fully_sequential() {
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            for j in 0..=i {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let s = LevelSchedule::build(&coo.to_csr(), Triangle::Lower);
        assert_eq!(s.n_levels(), 5);
        assert_eq!(s.max_width(), 1);
    }

    #[test]
    fn execution_order_covers_all_rows() {
        let a = poisson_2d(4, 4);
        let s = LevelSchedule::build(&a, Triangle::Lower);
        let mut order = s.execution_order();
        order.sort_unstable();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_matrix() {
        let a = CooMatrix::<f64>::new(0, 0).to_csr();
        let s = LevelSchedule::build(&a, Triangle::Lower);
        assert_eq!(s.n_levels(), 0);
        assert_eq!(s.mean_width(), 0.0);
    }
}
