//! Triangular-solve executors.
//!
//! Four strategies, mirroring the design space the paper discusses (§6.1):
//!
//! * **Sequential** forward/backward substitution — the reference.
//! * **Level-scheduled** (wavefront) execution: rows within a level run in
//!   parallel under rayon, with a barrier between levels. This is the
//!   inspector–executor pattern used by cuSPARSE-style solvers. A level is
//!   only forked to rayon when it has at least `LEVEL_PAR_MIN` rows: below
//!   that, fork/join overhead dominates the row work, so narrow levels run
//!   inline on the calling thread.
//! * **Synchronization-free** execution: worker threads claim rows in
//!   ascending order and busy-wait on per-row done flags instead of level
//!   barriers (in the style of Liu et al. and CapelliniSpTRSV).
//! * **Dependency-block** execution (in [`crate::blocks`]): a one-time
//!   inspector cuts the level schedule's execution order into row blocks
//!   and records cross-block dependency counts; workers release successor
//!   blocks by atomic countdown instead of joining a global barrier, so
//!   independent chains overlap across level boundaries. The counter-release
//!   invariant: a block's counter holds its distinct-predecessor count, each
//!   finished predecessor decrements it exactly once (Release), and a worker
//!   enters the block only after observing zero (Acquire) — so every
//!   cross-block read is ordered after the write that produced it.
//!
//! All executors compute bitwise-identical results: each row's dot product
//! is accumulated in CSR storage order.

use crate::dag::Triangle;
use crate::levels::LevelSchedule;
use rayon::prelude::*;
use spcg_probe::{Counter, NoProbe, Probe};
use spcg_sparse::{CsrMatrix, Scalar};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Rows per rayon task inside a level; levels narrower than this run
/// sequentially because fork/join would dominate.
const LEVEL_PAR_MIN: usize = 256;

/// Sequential forward substitution `L x = b` (diagonal must be stored and
/// nonzero).
pub fn solve_lower_seq<T: Scalar>(l: &CsrMatrix<T>, b: &[T], x: &mut [T]) {
    let n = l.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    for i in 0..n {
        x[i] = row_solve_lower(l, i, b[i], x);
    }
}

/// Sequential backward substitution `U x = b`.
pub fn solve_upper_seq<T: Scalar>(u: &CsrMatrix<T>, b: &[T], x: &mut [T]) {
    let n = u.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    for i in (0..n).rev() {
        x[i] = row_solve_upper(u, i, b[i], x);
    }
}

#[inline]
fn row_solve_lower<T: Scalar>(l: &CsrMatrix<T>, i: usize, bi: T, x: &[T]) -> T {
    let cols = l.row_cols(i);
    let vals = l.row_values(i);
    let mut acc = bi;
    let mut diag = T::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        if j < i {
            acc -= v * x[j];
        } else if j == i {
            diag = v;
        }
    }
    acc / diag
}

#[inline]
fn row_solve_upper<T: Scalar>(u: &CsrMatrix<T>, i: usize, bi: T, x: &[T]) -> T {
    let cols = u.row_cols(i);
    let vals = u.row_values(i);
    let mut acc = bi;
    let mut diag = T::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        if j > i {
            acc -= v * x[j];
        } else if j == i {
            diag = v;
        }
    }
    acc / diag
}

/// Shared-mutable slice for disjoint-index parallel writes.
///
/// Safety contract: concurrent callers must write disjoint indices. The
/// level-scheduled executor guarantees this because rows within a wavefront
/// are unique, and reads only touch rows finalized in earlier wavefronts
/// (separated by the rayon join barrier).
pub(crate) struct UnsafeSlice<'a, T>(&'a [std::cell::UnsafeCell<T>]);

unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: UnsafeCell<T> has the same layout as T.
        let ptr = slice as *mut [T] as *const [std::cell::UnsafeCell<T>];
        Self(unsafe { &*ptr })
    }

    /// SAFETY: caller must guarantee no concurrent access to index `i`.
    pub(crate) unsafe fn write(&self, i: usize, v: T) {
        unsafe { *self.0[i].get() = v };
    }

    /// SAFETY: caller must guarantee index `i` is not being written.
    pub(crate) unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        unsafe { *self.0[i].get() }
    }
}

/// Level-scheduled parallel triangular solve. The `schedule` must have been
/// built for the same matrix and the matching triangle.
pub fn solve_levels_par<T: Scalar>(
    m: &CsrMatrix<T>,
    schedule: &LevelSchedule,
    b: &[T],
    x: &mut [T],
) {
    solve_levels_par_probed(m, schedule, b, x, &mut NoProbe)
}

/// [`solve_levels_par`] with an observability [`Probe`]: emits one
/// [`Counter::LevelRows`] event per wavefront (the level width — the
/// quantity Algorithm 2 trades against fill) plus [`Counter::Levels`] /
/// [`Counter::Syncs`] totals (one inter-level barrier per level). With
/// `NoProbe` this monomorphizes to exactly [`solve_levels_par`]; counters
/// are emitted from the calling thread — levels execute one at a time, so
/// no synchronization is added.
pub fn solve_levels_par_probed<T: Scalar, P: Probe>(
    m: &CsrMatrix<T>,
    schedule: &LevelSchedule,
    b: &[T],
    x: &mut [T],
    probe: &mut P,
) {
    let n = m.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    assert_eq!(schedule.n_rows(), n, "schedule built for a different matrix");
    let triangle = schedule.triangle();
    let xs = UnsafeSlice::new(x);
    for level in schedule.levels() {
        probe.counter(Counter::LevelRows, level.len() as u64);
        let solve_row = |&i: &usize| {
            // SAFETY: rows within a level are unique (disjoint writes) and
            // only read x entries finalized in earlier levels.
            unsafe {
                let xi = match triangle {
                    Triangle::Lower => row_solve_lower_raw(m, i, b[i], |j| xs.read(j)),
                    Triangle::Upper => row_solve_upper_raw(m, i, b[i], |j| xs.read(j)),
                };
                xs.write(i, xi);
            }
        };
        if level.len() >= LEVEL_PAR_MIN {
            level.par_iter().for_each(solve_row);
        } else {
            level.iter().for_each(solve_row);
        }
    }
    probe.counter(Counter::Levels, schedule.n_levels() as u64);
    probe.counter(Counter::Syncs, schedule.n_levels() as u64);
}

#[inline]
pub(crate) fn row_solve_lower_raw<T: Scalar>(
    m: &CsrMatrix<T>,
    i: usize,
    bi: T,
    read: impl Fn(usize) -> T,
) -> T {
    let cols = m.row_cols(i);
    let vals = m.row_values(i);
    let mut acc = bi;
    let mut diag = T::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        if j < i {
            acc -= v * read(j);
        } else if j == i {
            diag = v;
        }
    }
    acc / diag
}

#[inline]
pub(crate) fn row_solve_upper_raw<T: Scalar>(
    m: &CsrMatrix<T>,
    i: usize,
    bi: T,
    read: impl Fn(usize) -> T,
) -> T {
    let cols = m.row_cols(i);
    let vals = m.row_values(i);
    let mut acc = bi;
    let mut diag = T::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        if j > i {
            acc -= v * read(j);
        } else if j == i {
            diag = v;
        }
    }
    acc / diag
}

/// Synchronization-free lower-triangular solve: `n_threads` workers claim
/// rows in ascending order from a shared counter and spin on per-row done
/// flags.
///
/// Deadlock-free: the smallest claimed-but-unfinished row has all its
/// dependences finished (they have smaller indices and were claimed
/// earlier), so at least one worker always makes progress.
pub fn solve_lower_sync_free<T: Scalar>(l: &CsrMatrix<T>, b: &[T], x: &mut [T], n_threads: usize) {
    let n = l.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    assert!(n_threads >= 1, "need at least one worker");
    if n == 0 {
        return;
    }
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let next = AtomicUsize::new(0);
    let xs = UnsafeSlice::new(x);

    crossbeam::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cols = l.row_cols(i);
                let vals = l.row_values(i);
                let mut acc = b[i];
                let mut diag = T::ZERO;
                for (&j, &v) in cols.iter().zip(vals) {
                    if j < i {
                        // Busy-wait until the producer row is done; the
                        // Acquire load pairs with the Release store below.
                        while !done[j].load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        // SAFETY: row j is done and never written again.
                        acc -= v * unsafe { xs.read(j) };
                    } else if j == i {
                        diag = v;
                    }
                }
                // SAFETY: only this worker owns row i.
                unsafe { xs.write(i, acc / diag) };
                done[i].store(true, Ordering::Release);
            });
        }
    })
    .expect("sync-free worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{banded_spd, poisson_2d};
    use spcg_sparse::Rng;

    fn lower_of(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
        a.lower()
    }

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
    }

    #[test]
    fn sequential_forward_substitution_matches_dense() {
        let a = banded_spd(20, 3, 0.9, 2.0, 1);
        let l = lower_of(&a);
        let b = rhs(20, 2);
        let mut x = vec![0.0; 20];
        solve_lower_seq(&l, &b, &mut x);
        let dense_x = l.to_dense().solve(&b).unwrap();
        for (xi, di) in x.iter().zip(&dense_x) {
            assert!((xi - di).abs() < 1e-10);
        }
    }

    #[test]
    fn sequential_backward_substitution_matches_dense() {
        let a = banded_spd(20, 3, 0.9, 2.0, 3);
        let u = a.upper();
        let b = rhs(20, 4);
        let mut x = vec![0.0; 20];
        solve_upper_seq(&u, &b, &mut x);
        let dense_x = u.to_dense().solve(&b).unwrap();
        for (xi, di) in x.iter().zip(&dense_x) {
            assert!((xi - di).abs() < 1e-10);
        }
    }

    #[test]
    fn level_parallel_lower_is_bitwise_equal_to_sequential() {
        let a = poisson_2d(30, 30);
        let l = lower_of(&a);
        let s = LevelSchedule::build(&l, Triangle::Lower);
        let b = rhs(900, 5);
        let mut x_seq = vec![0.0; 900];
        let mut x_par = vec![0.0; 900];
        solve_lower_seq(&l, &b, &mut x_seq);
        solve_levels_par(&l, &s, &b, &mut x_par);
        assert_eq!(x_seq, x_par);
    }

    #[test]
    fn level_parallel_upper_is_bitwise_equal_to_sequential() {
        let a = poisson_2d(25, 25);
        let u = a.upper();
        let s = LevelSchedule::build(&u, Triangle::Upper);
        let b = rhs(625, 6);
        let mut x_seq = vec![0.0; 625];
        let mut x_par = vec![0.0; 625];
        solve_upper_seq(&u, &b, &mut x_seq);
        solve_levels_par(&u, &s, &b, &mut x_par);
        assert_eq!(x_seq, x_par);
    }

    #[test]
    fn probed_executor_reports_level_widths() {
        let a = poisson_2d(10, 10);
        let l = lower_of(&a);
        let s = LevelSchedule::build(&l, Triangle::Lower);
        let b = rhs(100, 9);
        let mut x_plain = vec![0.0; 100];
        let mut x_probed = vec![0.0; 100];
        solve_lower_seq(&l, &b, &mut x_plain);
        let mut probe = spcg_probe::HistogramProbe::new();
        solve_levels_par_probed(&l, &s, &b, &mut x_probed, &mut probe);
        assert_eq!(x_plain, x_probed, "probe must not perturb the solve");
        assert_eq!(probe.counter_total(Counter::Levels), s.n_levels() as u64);
        assert_eq!(probe.counter_total(Counter::Syncs), s.n_levels() as u64);
        // Every row executes in exactly one level.
        assert_eq!(probe.counter_total(Counter::LevelRows), 100);
    }

    #[test]
    fn sync_free_matches_sequential() {
        let a = poisson_2d(20, 20);
        let l = lower_of(&a);
        let b = rhs(400, 7);
        let mut x_seq = vec![0.0; 400];
        solve_lower_seq(&l, &b, &mut x_seq);
        for n_threads in [1, 2, 4, 8] {
            let mut x_sf = vec![0.0; 400];
            solve_lower_sync_free(&l, &b, &mut x_sf, n_threads);
            assert_eq!(x_seq, x_sf, "n_threads={n_threads}");
        }
    }

    #[test]
    fn unit_diagonal_lower_solve() {
        // L with unit diagonal: x should equal b for the identity.
        let l = CsrMatrix::<f64>::identity(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        solve_lower_seq(&l, &b, &mut x);
        assert_eq!(x, b);
    }

    #[test]
    fn works_on_f32() {
        let a = poisson_2d(8, 8);
        let l32: CsrMatrix<f32> = lower_of(&a).cast();
        let b: Vec<f32> = rhs(64, 8).into_iter().map(|v| v as f32).collect();
        let mut x = vec![0.0f32; 64];
        solve_lower_seq(&l32, &b, &mut x);
        // Verify residual L x - b is small in f32 terms.
        let mut res = vec![0.0f32; 64];
        spcg_sparse::spmv::spmv(&l32, &x, &mut res);
        for (ri, bi) in res.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_system() {
        let l = CsrMatrix::<f64>::identity(0);
        let mut x: Vec<f64> = vec![];
        solve_lower_seq(&l, &[], &mut x);
        solve_lower_sync_free(&l, &[], &mut x, 4);
    }
}
