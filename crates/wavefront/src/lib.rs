//! # spcg-wavefront
//!
//! Wavefront (level-scheduling) machinery for sparse triangular systems:
//! dependence-DAG inspection, level scheduling, wavefront statistics
//! (including the paper's Equation 7 reduction metric), parallel executors
//! (level-barrier, synchronization-free, and dependency-block
//! counter-release), and the analytic cost model that prices the executor
//! strategies against each other.
//!
//! This crate is the "inspector–executor" substrate that both the
//! preconditioner application inside PCG and the GPU cost model build on.

#![warn(missing_docs)]

pub mod blocks;
pub mod cost;
pub mod dag;
pub mod executor;
pub mod levels;
pub mod stats;

pub use blocks::{
    solve_blocks, solve_blocks_probed, solve_blocks_with_threads, solve_blocks_with_threads_probed,
    BlockOptions, BlockSchedule,
};
pub use cost::ExecCostModel;
pub use dag::{DependenceDag, Triangle};
pub use executor::{
    solve_levels_par, solve_levels_par_probed, solve_lower_seq, solve_lower_sync_free,
    solve_upper_seq,
};
pub use levels::{wavefront_count, LevelSchedule};
pub use stats::{wavefront_reduction_percent, WavefrontStats};
