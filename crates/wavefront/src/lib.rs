//! # spcg-wavefront
//!
//! Wavefront (level-scheduling) machinery for sparse triangular systems:
//! dependence-DAG inspection, level scheduling, wavefront statistics
//! (including the paper's Equation 7 reduction metric), and parallel
//! executors (level-barrier and synchronization-free).
//!
//! This crate is the "inspector–executor" substrate that both the
//! preconditioner application inside PCG and the GPU cost model build on.

#![warn(missing_docs)]

pub mod dag;
pub mod executor;
pub mod levels;
pub mod stats;

pub use dag::{DependenceDag, Triangle};
pub use executor::{
    solve_levels_par, solve_levels_par_probed, solve_lower_seq, solve_lower_sync_free,
    solve_upper_seq,
};
pub use levels::{wavefront_count, LevelSchedule};
pub use stats::{wavefront_reduction_percent, WavefrontStats};
