//! Analytic pricing of the triangular-executor strategies.
//!
//! A miniature of the `spcg-gpusim` roofline that lives here so the core
//! pipeline (which must not depend on the simulator) can resolve
//! `ExecutionStrategy::Auto` and judge reorderings by *priced time* instead
//! of raw level counts. The constants mirror `DeviceSpec::a100()`; the
//! simulator exposes its devices as [`ExecCostModel`]s and a pin test keeps
//! the two in lockstep.

use crate::blocks::BlockSchedule;
use crate::levels::LevelSchedule;
use spcg_sparse::{CsrMatrix, Scalar};

/// Bytes per stored index (cuSPARSE uses 32-bit indices).
const IDX_BYTES: f64 = 4.0;

/// Device constants needed to price one triangular sweep under either
/// executor. All times are microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecCostModel {
    /// Cost of one kernel launch / level barrier.
    pub launch_overhead_us: f64,
    /// Cost of releasing one dependency block (an atomic countdown, not a
    /// kernel launch — orders of magnitude cheaper than a barrier).
    pub block_release_us: f64,
    /// Rows that can be in flight concurrently.
    pub parallel_rows: usize,
    /// Sustained memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Peak arithmetic throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Average cycles per stored entry in the sparse kernels.
    pub cycles_per_nnz: f64,
}

impl Default for ExecCostModel {
    /// A100-class constants (the simulator's reference device).
    fn default() -> Self {
        Self {
            launch_overhead_us: 3.0,
            block_release_us: 0.05,
            parallel_rows: 108 * 1024,
            mem_bandwidth_gbps: 1555.0,
            peak_gflops: 19_500.0,
            clock_ghz: 1.41,
            cycles_per_nnz: 8.0,
        }
    }
}

impl ExecCostModel {
    fn mem_time_us(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bandwidth_gbps * 1e3)
    }

    fn serial_entry_time_us(&self, nnz: f64) -> f64 {
        nnz * self.cycles_per_nnz / (self.clock_ghz * 1e3)
    }

    fn sweep_bytes_flops(&self, rows: f64, nnz: f64, value_bytes: f64) -> (f64, f64) {
        let bytes = nnz * (value_bytes + IDX_BYTES)
            + rows * (IDX_BYTES + 2.0 * value_bytes)
            + 0.5 * nnz * value_bytes;
        (bytes, 2.0 * nnz)
    }

    /// Priced time of one level-barrier sweep: launch overhead per level,
    /// each level rooflined over its memory traffic and longest serial row.
    pub fn level_time_us<T: Scalar>(&self, m: &CsrMatrix<T>, schedule: &LevelSchedule) -> f64 {
        let value_bytes = std::mem::size_of::<T>() as f64;
        let mut total = 0.0;
        for level in schedule.levels() {
            let mut nnz = 0usize;
            let mut max_row = 0usize;
            for &r in level {
                let c = m.row_nnz(r);
                nnz += c;
                max_row = max_row.max(c);
            }
            let (bytes, flops) =
                self.sweep_bytes_flops(level.len() as f64, nnz as f64, value_bytes);
            let waves = (level.len() as f64 / self.parallel_rows as f64).ceil().max(1.0);
            let serial_us = waves * self.serial_entry_time_us(max_row as f64);
            let compute_us = (flops / (self.peak_gflops * 1e3)).max(serial_us);
            total += self.launch_overhead_us + self.mem_time_us(bytes).max(compute_us);
        }
        total
    }

    /// Priced time of one CSR SpMV `y = A x`, one thread per row — the unit
    /// a *level-free* (approximate-inverse) preconditioner application is
    /// made of. Mirrors the simulator's `spmv_cost` so the kind-crossover
    /// search (priced triangular sweeps vs priced SpMVs) stays in lockstep
    /// with gpusim.
    pub fn spmv_time_us<T: Scalar>(&self, a: &CsrMatrix<T>) -> f64 {
        let n = a.n_rows() as f64;
        let nnz = a.nnz() as f64;
        let val = std::mem::size_of::<T>() as f64;
        let bytes = nnz * (val + IDX_BYTES) + (n + 1.0) * IDX_BYTES + 0.5 * nnz * val + n * val;
        let flops = 2.0 * nnz;
        let waves = (n / self.parallel_rows as f64).ceil().max(1.0);
        let max_row = (0..a.n_rows()).map(|r| a.row_nnz(r)).max().unwrap_or(0) as f64;
        let serial_us = waves * self.serial_entry_time_us(max_row);
        let compute_us = (flops / (self.peak_gflops * 1e3)).max(serial_us);
        self.launch_overhead_us + self.mem_time_us(bytes).max(compute_us)
    }

    /// Priced time of one dependency-block sweep: a single launch plus one
    /// release per block, rooflined over the sweep's total traffic and the
    /// heaviest serial chain through the block graph.
    pub fn block_time_us<T: Scalar>(&self, m: &CsrMatrix<T>, schedule: &BlockSchedule) -> f64 {
        if schedule.n_blocks() == 0 {
            return 0.0;
        }
        let value_bytes = std::mem::size_of::<T>() as f64;
        let (bytes, flops) =
            self.sweep_bytes_flops(schedule.n_rows() as f64, m.nnz() as f64, value_bytes);
        let serial_us = self.serial_entry_time_us(schedule.critical_path_nnz() as f64);
        let compute_us = (flops / (self.peak_gflops * 1e3)).max(serial_us);
        self.launch_overhead_us
            + schedule.n_blocks() as f64 * self.block_release_us
            + self.mem_time_us(bytes).max(compute_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Triangle;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn block_execution_prices_below_barriers_on_deep_schedules() {
        // 59 barriers vs 4 block releases on a 30x30 grid's lower factor.
        let l = poisson_2d(30, 30).lower();
        let levels = LevelSchedule::build(&l, Triangle::Lower);
        let blocks = BlockSchedule::from_levels(&l, &levels);
        let model = ExecCostModel::default();
        let lvl = model.level_time_us(&l, &levels);
        let blk = model.block_time_us(&l, &blocks);
        assert!(blk < lvl, "block {blk} µs !< barrier {lvl} µs");
        // The gap is dominated by launch overhead: 59 launches vs 1.
        assert!(lvl > levels.n_levels() as f64 * model.launch_overhead_us);
    }

    #[test]
    fn a_serial_chain_still_pays_its_critical_path() {
        let mut coo = spcg_sparse::CooMatrix::new(64, 64);
        for i in 0..64usize {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, 1.0).unwrap();
            }
        }
        let l = coo.to_csr();
        let levels = LevelSchedule::build(&l, Triangle::Lower);
        let blocks = BlockSchedule::from_levels(&l, &levels);
        let model = ExecCostModel::default();
        // The chain's whole nnz is on the critical path.
        assert_eq!(blocks.critical_path_nnz(), l.nnz());
        assert!(model.block_time_us(&l, &blocks) > 0.0);
    }

    #[test]
    fn deterministic_and_monotone_in_releases() {
        let l = poisson_2d(16, 16).lower();
        let levels = LevelSchedule::build(&l, Triangle::Lower);
        let blocks = BlockSchedule::from_levels(&l, &levels);
        let model = ExecCostModel::default();
        assert_eq!(model.block_time_us(&l, &blocks), model.block_time_us(&l, &blocks));
        let pricier = ExecCostModel { block_release_us: 10.0, ..ExecCostModel::default() };
        assert!(pricier.block_time_us(&l, &blocks) > model.block_time_us(&l, &blocks));
    }
}
