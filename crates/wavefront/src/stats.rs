//! Wavefront statistics and the reduction metric of Equation 7.

use crate::dag::Triangle;
use crate::levels::LevelSchedule;
use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, Scalar};

/// Summary statistics of one level schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavefrontStats {
    /// Number of wavefronts (levels).
    pub n_levels: usize,
    /// Number of rows scheduled.
    pub n_rows: usize,
    /// Rows in the widest wavefront.
    pub max_width: usize,
    /// Mean rows per wavefront.
    pub mean_width: f64,
}

impl WavefrontStats {
    /// Computes statistics from a schedule.
    pub fn from_schedule(s: &LevelSchedule) -> Self {
        Self {
            n_levels: s.n_levels(),
            n_rows: s.n_rows(),
            max_width: s.max_width(),
            mean_width: s.mean_width(),
        }
    }

    /// Convenience: build the lower-triangle schedule of `a` and summarize.
    pub fn of_matrix<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        Self::from_schedule(&LevelSchedule::build(a, Triangle::Lower))
    }

    /// Average available parallelism (rows per synchronization).
    pub fn parallelism(&self) -> f64 {
        self.mean_width
    }
}

/// Wavefront reduction percentage, Equation 7 of the paper:
/// `100 * (w_A - w_Â) / w_A`.
///
/// Positive when sparsification removed wavefronts; 0 when `w_A == 0`.
pub fn wavefront_reduction_percent(w_original: usize, w_sparsified: usize) -> f64 {
    if w_original == 0 {
        return 0.0;
    }
    100.0 * (w_original as f64 - w_sparsified as f64) / w_original as f64
}

/// The alternative normalization used on line 10 of Algorithm 2, which
/// divides by the *sparsified* count: `100 * (w_A - w_Â) / w_Â`.
pub fn wavefront_reduction_vs_sparsified(w_original: usize, w_sparsified: usize) -> f64 {
    if w_sparsified == 0 {
        return 0.0;
    }
    100.0 * (w_original as f64 - w_sparsified as f64) / w_sparsified as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn stats_of_poisson_grid() {
        let a = poisson_2d(6, 6);
        let s = WavefrontStats::of_matrix(&a);
        assert_eq!(s.n_levels, 11);
        assert_eq!(s.n_rows, 36);
        assert_eq!(s.max_width, 6); // longest antidiagonal
        assert!((s.mean_width - 36.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.parallelism(), s.mean_width);
    }

    #[test]
    fn reduction_percent_equation7() {
        // The Figure 3 caption: 14.73% of wavefronts dropped.
        assert!((wavefront_reduction_percent(100, 85) - 15.0).abs() < 1e-12);
        assert_eq!(wavefront_reduction_percent(10, 10), 0.0);
        assert!(wavefront_reduction_percent(10, 12) < 0.0); // can be negative
        assert_eq!(wavefront_reduction_percent(0, 0), 0.0);
    }

    #[test]
    fn reduction_vs_sparsified_is_larger_for_same_drop() {
        let a = wavefront_reduction_percent(100, 80);
        let b = wavefront_reduction_vs_sparsified(100, 80);
        assert!(b > a);
        assert_eq!(wavefront_reduction_vs_sparsified(5, 0), 0.0);
    }
}
