//! Dependency-driven block execution: the barrier-free triangular executor.
//!
//! The level-barrier executor synchronizes *every* thread at *every*
//! wavefront boundary, even when only a narrow chain actually crosses it —
//! the per-level cost the paper's sparsification attacks. This module
//! removes the barrier instead of shrinking its count: a one-time inspector
//! cuts the level schedule's flattened execution order into consecutive row
//! *blocks* and records, for each block, how many distinct predecessor
//! blocks feed it. Workers then claim blocks in order and release successor
//! blocks by atomic countdown (in the style of Böhnlein et al.'s scheduled
//! SpTRSV and Gondhalekar's fine-grained domain decomposition), so
//! independent chains overlap across level boundaries.
//!
//! Invariants the executor relies on (all checked by
//! [`BlockSchedule::validate`] and the property suite):
//!
//! * blocks partition the rows exactly once, and in-block row order is a
//!   topological order (every in-block dependence points to an earlier
//!   in-block row);
//! * every cross-block dependence points to a block constructed earlier,
//!   so claiming blocks in construction order can never deadlock;
//! * a block's counter starts at its distinct-predecessor count, each
//!   finished predecessor decrements it exactly once with `Release`, and a
//!   worker enters the block only after an `Acquire` load observes zero —
//!   ordering every cross-block read after the write that produced it.

use crate::dag::{DependenceDag, Triangle};
use crate::executor::{row_solve_lower_raw, row_solve_upper_raw, UnsafeSlice};
use crate::levels::LevelSchedule;
use spcg_probe::{Counter, NoProbe, Probe};
use spcg_sparse::{CsrMatrix, Scalar};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Minimum system size for which the dependency-block executor spawns
/// worker threads; below this the whole solve runs inline on the calling
/// thread (thread spawn would dominate, and the inline path allocates
/// nothing).
const BLOCK_PAR_MIN: usize = 512;

/// Counter arrays kept warm per schedule; one suffices for a solo solve,
/// the second absorbs a concurrent solve sharing the plan.
const COUNTER_POOL_CAP: usize = 2;

/// Inspector knobs for [`BlockSchedule::from_levels_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOptions {
    /// Rows per block. Larger blocks amortize release traffic; smaller
    /// blocks expose more cross-level overlap. The default (256) matches
    /// the level executor's fork threshold.
    pub target_rows: usize,
}

impl Default for BlockOptions {
    fn default() -> Self {
        Self { target_rows: 256 }
    }
}

/// A block partition of one triangular solve, with the cross-block
/// dependency counts the counter-release executor needs.
///
/// Built once per factorization (the "inspector" phase) and reused across
/// solves; the release counters live in an internal pool so warm solves
/// allocate nothing.
#[derive(Debug)]
pub struct BlockSchedule {
    triangle: Triangle,
    n_rows: usize,
    /// Concatenated block rows, in execution order.
    rows: Vec<usize>,
    /// `rows[block_ptr[b]..block_ptr[b + 1]]` are the rows of block `b`.
    block_ptr: Vec<usize>,
    /// CSR-style successor lists: `succ[succ_ptr[b]..succ_ptr[b + 1]]` are
    /// the distinct blocks that wait on block `b`.
    succ: Vec<usize>,
    succ_ptr: Vec<usize>,
    /// Distinct-predecessor count per block — the counter start values.
    in_degree: Vec<usize>,
    /// Stored entries per block (for cost models).
    block_nnz: Vec<usize>,
    /// Blocks on the longest dependency chain through the block graph.
    critical_blocks: usize,
    /// Stored entries along that heaviest chain.
    critical_nnz: usize,
    /// Warm release-counter arrays, pre-sized to `n_blocks`.
    pool: Mutex<Vec<Box<[AtomicUsize]>>>,
}

impl Clone for BlockSchedule {
    fn clone(&self) -> Self {
        Self {
            triangle: self.triangle,
            n_rows: self.n_rows,
            rows: self.rows.clone(),
            block_ptr: self.block_ptr.clone(),
            succ: self.succ.clone(),
            succ_ptr: self.succ_ptr.clone(),
            in_degree: self.in_degree.clone(),
            block_nnz: self.block_nnz.clone(),
            critical_blocks: self.critical_blocks,
            critical_nnz: self.critical_nnz,
            pool: Mutex::new(seed_pool(self.in_degree.len())),
        }
    }
}

impl PartialEq for BlockSchedule {
    fn eq(&self, other: &Self) -> bool {
        self.triangle == other.triangle
            && self.n_rows == other.n_rows
            && self.rows == other.rows
            && self.block_ptr == other.block_ptr
            && self.succ == other.succ
            && self.succ_ptr == other.succ_ptr
            && self.in_degree == other.in_degree
            && self.block_nnz == other.block_nnz
    }
}

impl Eq for BlockSchedule {}

fn seed_pool(n_blocks: usize) -> Vec<Box<[AtomicUsize]>> {
    let mut pool = Vec::with_capacity(COUNTER_POOL_CAP);
    pool.push((0..n_blocks).map(|_| AtomicUsize::new(0)).collect());
    pool
}

impl BlockSchedule {
    /// Builds the block partition directly from a matrix (convenience for
    /// tests; production callers reuse the level schedule they already
    /// have via [`from_levels`](Self::from_levels)).
    pub fn build<T: Scalar>(m: &CsrMatrix<T>, triangle: Triangle) -> Self {
        Self::from_levels(m, &LevelSchedule::build(m, triangle))
    }

    /// Builds the block partition from an existing level schedule with the
    /// default [`BlockOptions`].
    pub fn from_levels<T: Scalar>(m: &CsrMatrix<T>, schedule: &LevelSchedule) -> Self {
        Self::from_levels_with(m, schedule, BlockOptions::default())
    }

    /// Builds the block partition from an existing level schedule.
    ///
    /// The level schedule's flattened execution order (level by level, rows
    /// ascending within a level) is cut into consecutive chunks of
    /// `opts.target_rows`. Because that order is topological, every
    /// dependence points to an earlier position: in-block dependences land
    /// on earlier in-block rows, cross-block dependences on
    /// earlier-constructed blocks — so construction order is a topological
    /// order of the block graph. Narrow-chain levels merge into shared
    /// blocks (no barrier between them), while a wide level spreads over
    /// several mutually independent blocks that run concurrently.
    pub fn from_levels_with<T: Scalar>(
        m: &CsrMatrix<T>,
        schedule: &LevelSchedule,
        opts: BlockOptions,
    ) -> Self {
        let n = m.n_rows();
        assert_eq!(schedule.n_rows(), n, "schedule built for a different matrix");
        let triangle = schedule.triangle();
        let target = opts.target_rows.max(1);
        let rows = schedule.execution_order();
        let n_blocks = n.div_ceil(target);
        let block_ptr: Vec<usize> = (0..=n_blocks).map(|b| (b * target).min(n)).collect();
        let mut row_block = vec![0usize; n];
        for (pos, &i) in rows.iter().enumerate() {
            row_block[i] = pos / target;
        }

        // Distinct cross-block edges, deduplicated per target block with a
        // stamp array, then bucketed into CSR successor lists.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut in_degree = vec![0usize; n_blocks];
        let mut block_nnz = vec![0usize; n_blocks];
        let mut seen = vec![usize::MAX; n_blocks];
        for b in 0..n_blocks {
            for &i in &rows[block_ptr[b]..block_ptr[b + 1]] {
                block_nnz[b] += m.row_nnz(i);
                for &j in m.row_cols(i) {
                    let is_dep = match triangle {
                        Triangle::Lower => j < i,
                        Triangle::Upper => j > i,
                    };
                    if !is_dep {
                        continue;
                    }
                    let pb = row_block[j];
                    if pb != b && seen[pb] != b {
                        seen[pb] = b;
                        edges.push((pb, b));
                        in_degree[b] += 1;
                    }
                }
            }
        }
        let mut succ_ptr = vec![0usize; n_blocks + 1];
        for &(pb, _) in &edges {
            succ_ptr[pb + 1] += 1;
        }
        for b in 0..n_blocks {
            succ_ptr[b + 1] += succ_ptr[b];
        }
        let mut succ = vec![0usize; edges.len()];
        let mut cursor = succ_ptr.clone();
        for &(pb, b) in &edges {
            succ[cursor[pb]] = b;
            cursor[pb] += 1;
        }
        debug_assert_eq!(in_degree.iter().sum::<usize>(), succ.len());

        // Critical path through the block graph, in blocks and in stored
        // entries; every edge goes forward, so one ascending pass suffices.
        let mut depth = vec![1usize; n_blocks];
        let mut path_nnz = block_nnz.clone();
        for b in 0..n_blocks {
            for &s in &succ[succ_ptr[b]..succ_ptr[b + 1]] {
                depth[s] = depth[s].max(depth[b] + 1);
                path_nnz[s] = path_nnz[s].max(path_nnz[b] + block_nnz[s]);
            }
        }
        let critical_blocks = depth.iter().copied().max().unwrap_or(0);
        let critical_nnz = path_nnz.iter().copied().max().unwrap_or(0);

        Self {
            triangle,
            n_rows: n,
            rows,
            block_ptr,
            succ,
            succ_ptr,
            in_degree,
            block_nnz,
            critical_blocks,
            critical_nnz,
            pool: Mutex::new(seed_pool(n_blocks)),
        }
    }

    /// Number of blocks — the synchronization count of one block-executed
    /// sweep (each block is released exactly once).
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.in_degree.len()
    }

    /// The triangle this schedule was built for.
    #[inline]
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Total number of rows scheduled.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows of block `b`, in execution order.
    #[inline]
    pub fn block(&self, b: usize) -> &[usize] {
        &self.rows[self.block_ptr[b]..self.block_ptr[b + 1]]
    }

    /// Distinct blocks waiting on block `b`.
    #[inline]
    pub fn successors(&self, b: usize) -> &[usize] {
        &self.succ[self.succ_ptr[b]..self.succ_ptr[b + 1]]
    }

    /// Distinct-predecessor count per block — the release-counter start
    /// values.
    #[inline]
    pub fn in_degrees(&self) -> &[usize] {
        &self.in_degree
    }

    /// Number of cross-block dependency edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// Stored entries per block.
    #[inline]
    pub fn block_nnz(&self) -> &[usize] {
        &self.block_nnz
    }

    /// Blocks on the longest dependency chain — the sweep's serial depth.
    #[inline]
    pub fn critical_path_blocks(&self) -> usize {
        self.critical_blocks
    }

    /// Stored entries along the heaviest dependency chain.
    #[inline]
    pub fn critical_path_nnz(&self) -> usize {
        self.critical_nnz
    }

    /// Approximate heap footprint of the schedule, including the pooled
    /// release counters.
    pub fn approx_bytes(&self) -> usize {
        let usize_bytes = std::mem::size_of::<usize>();
        let pooled = self.pool.lock().map(|p| p.len()).unwrap_or(0);
        (self.rows.len()
            + self.block_ptr.len()
            + self.succ.len()
            + self.succ_ptr.len()
            + self.in_degree.len() * (1 + pooled)
            + self.block_nnz.len())
            * usize_bytes
    }

    /// Takes a warm counter array from the pool (or allocates on first
    /// oversubscription) and resets it to the block in-degrees.
    fn acquire_counters(&self) -> Box<[AtomicUsize]> {
        let popped = self.pool.lock().expect("counter pool poisoned").pop();
        let counters =
            popped.unwrap_or_else(|| (0..self.n_blocks()).map(|_| AtomicUsize::new(0)).collect());
        for (c, &d) in counters.iter().zip(&self.in_degree) {
            c.store(d, Ordering::Relaxed);
        }
        counters
    }

    /// Returns a counter array to the pool (dropped once the pool is full).
    fn release_counters(&self, counters: Box<[AtomicUsize]>) {
        let mut pool = self.pool.lock().expect("counter pool poisoned");
        if pool.len() < COUNTER_POOL_CAP {
            pool.push(counters);
        }
    }

    /// Checks every invariant the counter-release executor relies on:
    /// blocks partition the rows exactly once; every dependence of `m`
    /// stays in-block pointing to an earlier in-block row or crosses to an
    /// earlier-constructed block; successor lists are the exact transpose
    /// of the distinct-predecessor relation; and the counters sum to the
    /// in-degree of the block graph.
    pub fn validate<T: Scalar>(&self, m: &CsrMatrix<T>) -> Result<(), String> {
        let n = self.n_rows;
        if m.n_rows() != n {
            return Err(format!("matrix has {} rows, schedule {}", m.n_rows(), n));
        }
        if *self.block_ptr.last().unwrap_or(&0) != self.rows.len() || self.rows.len() != n {
            return Err("blocks do not cover the rows".into());
        }
        let mut row_block = vec![usize::MAX; n];
        let mut row_pos = vec![usize::MAX; n];
        for b in 0..self.n_blocks() {
            for (p, &i) in self.block(b).iter().enumerate() {
                if row_block[i] != usize::MAX {
                    return Err(format!("row {i} scheduled twice"));
                }
                row_block[i] = b;
                row_pos[i] = p;
            }
        }
        if row_block.contains(&usize::MAX) {
            return Err("a row is missing from every block".into());
        }
        // Recompute the distinct cross-block edge set from the DAG and
        // check order, in-degrees, and the successor transpose against it.
        let dag = DependenceDag::build(m, self.triangle);
        let mut want_edges: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            let (b, p) = (row_block[i], row_pos[i]);
            for &j in dag.predecessors(i) {
                let (pb, pp) = (row_block[j], row_pos[j]);
                if pb == b {
                    if pp >= p {
                        return Err(format!("in-block dependence {j} -> {i} is not in row order"));
                    }
                } else if pb > b {
                    return Err(format!(
                        "dependence {j} -> {i} points backward across blocks ({pb} -> {b})"
                    ));
                } else {
                    want_edges.push((pb, b));
                }
            }
        }
        want_edges.sort_unstable();
        want_edges.dedup();
        let mut have_edges: Vec<(usize, usize)> = (0..self.n_blocks())
            .flat_map(|b| self.successors(b).iter().map(move |&s| (b, s)))
            .collect();
        have_edges.sort_unstable();
        if have_edges != want_edges {
            return Err(format!(
                "successor lists record {} edges, the DAG implies {}",
                have_edges.len(),
                want_edges.len()
            ));
        }
        let mut want_in = vec![0usize; self.n_blocks()];
        for &(_, b) in &want_edges {
            want_in[b] += 1;
        }
        if want_in != self.in_degree {
            return Err("counter start values do not match the block-graph in-degrees".into());
        }
        if self.in_degree.iter().sum::<usize>() != self.n_edges() {
            return Err("counters do not sum to the block-graph in-degree".into());
        }
        Ok(())
    }
}

/// Dependency-block triangular solve using rayon's configured thread count.
/// The `schedule` must have been built for the same matrix and the matching
/// triangle. Bitwise identical to the sequential sweeps.
pub fn solve_blocks<T: Scalar>(m: &CsrMatrix<T>, schedule: &BlockSchedule, b: &[T], x: &mut [T]) {
    solve_blocks_probed(m, schedule, b, x, &mut NoProbe)
}

/// [`solve_blocks`] with an observability [`Probe`]: emits
/// [`Counter::Syncs`] and [`Counter::ExecBlocks`] totals (one release per
/// block — the quantity that replaces barrier-per-level). Counters are
/// emitted from the calling thread after the workers join.
pub fn solve_blocks_probed<T: Scalar, P: Probe>(
    m: &CsrMatrix<T>,
    schedule: &BlockSchedule,
    b: &[T],
    x: &mut [T],
    probe: &mut P,
) {
    solve_blocks_with_threads_probed(m, schedule, b, x, rayon::current_num_threads(), probe)
}

/// [`solve_blocks`] with an explicit worker count (for the equivalence and
/// torture suites, which sweep thread counts independently of rayon's
/// global pool).
pub fn solve_blocks_with_threads<T: Scalar>(
    m: &CsrMatrix<T>,
    schedule: &BlockSchedule,
    b: &[T],
    x: &mut [T],
    n_threads: usize,
) {
    solve_blocks_with_threads_probed(m, schedule, b, x, n_threads, &mut NoProbe)
}

/// [`solve_blocks_with_threads`] with an observability [`Probe`].
pub fn solve_blocks_with_threads_probed<T: Scalar, P: Probe>(
    m: &CsrMatrix<T>,
    schedule: &BlockSchedule,
    b: &[T],
    x: &mut [T],
    n_threads: usize,
    probe: &mut P,
) {
    let n = m.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    assert_eq!(schedule.n_rows(), n, "schedule built for a different matrix");
    assert!(n_threads >= 1, "need at least one worker");
    let n_blocks = schedule.n_blocks();
    if n == 0 {
        return;
    }
    let triangle = schedule.triangle();
    if n_threads <= 1 || n < BLOCK_PAR_MIN {
        // Inline path: the block order is topological, so a single sweep in
        // schedule order needs no counters and performs no allocation.
        for &i in &schedule.rows {
            let xi = match triangle {
                Triangle::Lower => row_solve_lower_raw(m, i, b[i], |j| x[j]),
                Triangle::Upper => row_solve_upper_raw(m, i, b[i], |j| x[j]),
            };
            x[i] = xi;
        }
    } else {
        let counters = schedule.acquire_counters();
        let next = AtomicUsize::new(0);
        let xs = UnsafeSlice::new(x);
        let workers = n_threads.min(n_blocks);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let blk = next.fetch_add(1, Ordering::Relaxed);
                    if blk >= n_blocks {
                        break;
                    }
                    // Busy-wait until every distinct predecessor block has
                    // released us; the Acquire load pairs with the Release
                    // decrements below (RMWs extend the release sequence,
                    // so all predecessors' writes are visible).
                    while counters[blk].load(Ordering::Acquire) != 0 {
                        std::hint::spin_loop();
                    }
                    for &i in schedule.block(blk) {
                        // SAFETY: rows are partitioned across blocks
                        // (disjoint writes); reads touch rows finalized
                        // either earlier in this block (same thread) or in
                        // a released predecessor block (Acquire above).
                        unsafe {
                            let xi = match triangle {
                                Triangle::Lower => row_solve_lower_raw(m, i, b[i], |j| xs.read(j)),
                                Triangle::Upper => row_solve_upper_raw(m, i, b[i], |j| xs.read(j)),
                            };
                            xs.write(i, xi);
                        }
                    }
                    for &s in schedule.successors(blk) {
                        counters[s].fetch_sub(1, Ordering::Release);
                    }
                });
            }
        })
        .expect("dependency-block worker panicked");
        schedule.release_counters(counters);
    }
    probe.counter(Counter::Syncs, n_blocks as u64);
    probe.counter(Counter::ExecBlocks, n_blocks as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{solve_lower_seq, solve_upper_seq};
    use spcg_sparse::generators::{banded_spd, poisson_2d};
    use spcg_sparse::Rng;

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
    }

    #[test]
    fn chunked_partition_covers_rows_and_validates() {
        let a = poisson_2d(20, 20);
        let l = a.lower();
        for target in [1, 3, 64, 256, 4096] {
            let s = BlockSchedule::from_levels_with(
                &l,
                &LevelSchedule::build(&l, Triangle::Lower),
                BlockOptions { target_rows: target },
            );
            assert_eq!(s.n_blocks(), 400usize.div_ceil(target), "target={target}");
            s.validate(&l).unwrap_or_else(|e| panic!("target={target}: {e}"));
        }
    }

    #[test]
    fn fewer_blocks_than_levels_on_deep_schedules() {
        // The whole point: a 30x30 grid has 59 lower wavefronts, but only
        // ceil(900/256) = 4 blocks at the default granularity.
        let a = poisson_2d(30, 30);
        let l = a.lower();
        let levels = LevelSchedule::build(&l, Triangle::Lower);
        let s = BlockSchedule::from_levels(&l, &levels);
        assert!(levels.n_levels() > 50);
        assert_eq!(s.n_blocks(), 4);
        assert!(s.n_blocks() < levels.n_levels());
    }

    #[test]
    fn lower_blocks_bitwise_equal_to_sequential() {
        let a = poisson_2d(30, 30);
        let l = a.lower();
        let s = BlockSchedule::build(&l, Triangle::Lower);
        let b = rhs(900, 5);
        let mut x_seq = vec![0.0; 900];
        solve_lower_seq(&l, &b, &mut x_seq);
        for n_threads in [1, 2, 4, 8] {
            let mut x_blk = vec![0.0; 900];
            solve_blocks_with_threads(&l, &s, &b, &mut x_blk, n_threads);
            assert_eq!(x_seq, x_blk, "n_threads={n_threads}");
        }
    }

    #[test]
    fn upper_blocks_bitwise_equal_to_sequential() {
        let a = poisson_2d(25, 25);
        let u = a.upper();
        let s = BlockSchedule::build(&u, Triangle::Upper);
        let b = rhs(625, 6);
        let mut x_seq = vec![0.0; 625];
        solve_upper_seq(&u, &b, &mut x_seq);
        for n_threads in [1, 4] {
            let mut x_blk = vec![0.0; 625];
            solve_blocks_with_threads(&u, &s, &b, &mut x_blk, n_threads);
            assert_eq!(x_seq, x_blk, "n_threads={n_threads}");
        }
    }

    #[test]
    fn tiny_blocks_maximize_contention_and_still_agree() {
        // target_rows = 1 degenerates to the sync-free per-row scheme with
        // release counters — the hardest case for the release path.
        let a = banded_spd(700, 4, 0.9, 2.0, 1);
        let l = a.lower();
        let s = BlockSchedule::from_levels_with(
            &l,
            &LevelSchedule::build(&l, Triangle::Lower),
            BlockOptions { target_rows: 1 },
        );
        s.validate(&l).unwrap();
        let b = rhs(700, 7);
        let mut x_seq = vec![0.0; 700];
        solve_lower_seq(&l, &b, &mut x_seq);
        let mut x_blk = vec![0.0; 700];
        solve_blocks_with_threads(&l, &s, &b, &mut x_blk, 8);
        assert_eq!(x_seq, x_blk);
    }

    #[test]
    fn probed_blocks_report_release_counts() {
        let a = poisson_2d(10, 10);
        let l = a.lower();
        let s = BlockSchedule::from_levels_with(
            &l,
            &LevelSchedule::build(&l, Triangle::Lower),
            BlockOptions { target_rows: 16 },
        );
        let b = rhs(100, 9);
        let mut x_plain = vec![0.0; 100];
        let mut x_probed = vec![0.0; 100];
        solve_lower_seq(&l, &b, &mut x_plain);
        let mut probe = spcg_probe::HistogramProbe::new();
        solve_blocks_probed(&l, &s, &b, &mut x_probed, &mut probe);
        assert_eq!(x_plain, x_probed, "probe must not perturb the solve");
        assert_eq!(probe.counter_total(Counter::Syncs), s.n_blocks() as u64);
        assert_eq!(probe.counter_total(Counter::ExecBlocks), s.n_blocks() as u64);
    }

    #[test]
    fn counter_pool_is_reused_across_solves() {
        let a = poisson_2d(24, 24);
        let l = a.lower();
        let s = BlockSchedule::from_levels_with(
            &l,
            &LevelSchedule::build(&l, Triangle::Lower),
            BlockOptions { target_rows: 32 },
        );
        let b = rhs(576, 3);
        let mut x_seq = vec![0.0; 576];
        solve_lower_seq(&l, &b, &mut x_seq);
        for _ in 0..10 {
            let mut x = vec![0.0; 576];
            solve_blocks_with_threads(&l, &s, &b, &mut x, 4);
            assert_eq!(x_seq, x);
        }
        assert_eq!(s.pool.lock().unwrap().len(), 1, "the seeded array keeps cycling");
    }

    #[test]
    fn critical_path_tracks_block_graph() {
        // A dense lower triangle is one long chain: every block depends on
        // its predecessor, so the critical path is all blocks and all nnz.
        let mut coo = spcg_sparse::CooMatrix::new(12, 12);
        for i in 0..12 {
            for j in 0..=i {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let l = coo.to_csr();
        let s = BlockSchedule::from_levels_with(
            &l,
            &LevelSchedule::build(&l, Triangle::Lower),
            BlockOptions { target_rows: 3 },
        );
        assert_eq!(s.n_blocks(), 4);
        assert_eq!(s.critical_path_blocks(), 4);
        assert_eq!(s.critical_path_nnz(), l.nnz());
        // A diagonal matrix is one level of independent rows: no edges.
        let d = CsrMatrix::<f64>::identity(12);
        let sd = BlockSchedule::from_levels_with(
            &d,
            &LevelSchedule::build(&d, Triangle::Lower),
            BlockOptions { target_rows: 3 },
        );
        assert_eq!(sd.n_edges(), 0);
        assert_eq!(sd.critical_path_blocks(), 1);
    }

    #[test]
    fn clone_and_eq_ignore_the_pool() {
        let a = poisson_2d(8, 8);
        let l = a.lower();
        let s = BlockSchedule::build(&l, Triangle::Lower);
        let c = s.clone();
        assert_eq!(s, c);
        assert!(c.approx_bytes() > 0);
    }

    #[test]
    fn empty_system() {
        let l = CsrMatrix::<f64>::identity(0);
        let s = BlockSchedule::build(&l, Triangle::Lower);
        assert_eq!(s.n_blocks(), 0);
        s.validate(&l).unwrap();
        let mut x: Vec<f64> = vec![];
        solve_blocks(&l, &s, &[], &mut x);
        solve_blocks_with_threads(&l, &s, &[], &mut x, 4);
    }
}
