//! Dependence DAG of a sparse triangular system (Figure 1c of the paper).
//!
//! For a lower-triangular solve `L x = b`, unknown `x_i` depends on `x_j`
//! whenever `L[i][j] != 0` with `j < i`: row `i` cannot start until row `j`
//! has finished. The inspector builds this graph at runtime; the executor
//! (see [`crate::executor`]) then runs one wavefront at a time.

use spcg_sparse::{CsrMatrix, Scalar};

/// Which triangle the system being analyzed lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Forward substitution: dependences point from smaller to larger row.
    Lower,
    /// Backward substitution: dependences point from larger to smaller row.
    Upper,
}

/// The dependence graph of one triangular solve.
///
/// `predecessors[i]` lists rows that must complete before row `i`;
/// `successors[j]` lists rows unblocked by completing row `j`.
#[derive(Debug, Clone)]
pub struct DependenceDag {
    triangle: Triangle,
    predecessors: Vec<Vec<usize>>,
    successors: Vec<Vec<usize>>,
    n_edges: usize,
}

impl DependenceDag {
    /// Builds the DAG from the stored off-triangle entries of `a`.
    ///
    /// Only the entries in the chosen triangle participate; other entries
    /// (e.g. the upper triangle of a full symmetric matrix when analyzing
    /// `Triangle::Lower`) are ignored, so the function can be called directly
    /// on a full matrix `A` to get the wavefront structure its lower factor
    /// would have.
    pub fn build<T: Scalar>(a: &CsrMatrix<T>, triangle: Triangle) -> Self {
        assert!(a.is_square(), "dependence DAG requires a square matrix");
        let n = a.n_rows();
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut n_edges = 0;
        for (i, preds) in predecessors.iter_mut().enumerate() {
            for &j in a.row_cols(i) {
                let is_dep = match triangle {
                    Triangle::Lower => j < i,
                    Triangle::Upper => j > i,
                };
                if is_dep {
                    preds.push(j);
                    successors[j].push(i);
                    n_edges += 1;
                }
            }
        }
        Self { triangle, predecessors, successors, n_edges }
    }

    /// Number of vertices (rows).
    pub fn n_rows(&self) -> usize {
        self.predecessors.len()
    }

    /// Number of dependence edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The triangle this DAG was built for.
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Rows that must complete before `row`.
    pub fn predecessors(&self, row: usize) -> &[usize] {
        &self.predecessors[row]
    }

    /// Rows unblocked by completing `row`.
    pub fn successors(&self, row: usize) -> &[usize] {
        &self.successors[row]
    }

    /// In-degree of every vertex — the starting state of a topological sweep.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.predecessors.iter().map(|p| p.len()).collect()
    }

    /// Length of the longest dependence chain (== number of wavefronts).
    pub fn critical_path_len(&self) -> usize {
        let n = self.n_rows();
        if n == 0 {
            return 0;
        }
        let mut depth = vec![0usize; n];
        let order: Box<dyn Iterator<Item = usize>> = match self.triangle {
            Triangle::Lower => Box::new(0..n),
            Triangle::Upper => Box::new((0..n).rev()),
        };
        let mut max_depth = 0;
        for i in order {
            let d = self.predecessors[i].iter().map(|&j| depth[j] + 1).max().unwrap_or(0);
            depth[i] = d;
            max_depth = max_depth.max(d);
        }
        max_depth + 1
    }

    /// Checks that `order` (a row visit sequence) respects every dependence.
    pub fn is_topological(&self, order: &[usize]) -> bool {
        if order.len() != self.n_rows() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.n_rows()];
        for (k, &row) in order.iter().enumerate() {
            if row >= self.n_rows() || pos[row] != usize::MAX {
                return false;
            }
            pos[row] = k;
        }
        (0..self.n_rows()).all(|i| self.predecessors[i].iter().all(|&j| pos[j] < pos[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::CooMatrix;

    /// Figure 1 of the paper: L = [a . . .; . b . .; c . d .; e . f g].
    fn figure1() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c, v) in &[
            (0usize, 0usize, 1.0),
            (1, 1, 1.0),
            (2, 0, 1.0),
            (2, 2, 1.0),
            (3, 0, 1.0),
            (3, 2, 1.0),
            (3, 3, 1.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn figure1_dependences() {
        let dag = DependenceDag::build(&figure1(), Triangle::Lower);
        assert_eq!(dag.n_edges(), 3);
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[] as &[usize]);
        assert_eq!(dag.predecessors(2), &[0]);
        assert_eq!(dag.predecessors(3), &[0, 2]);
        assert_eq!(dag.successors(0), &[2, 3]);
    }

    #[test]
    fn figure1_critical_path_is_three_wavefronts() {
        let dag = DependenceDag::build(&figure1(), Triangle::Lower);
        assert_eq!(dag.critical_path_len(), 3);
    }

    #[test]
    fn sparsified_figure1_drops_to_two_wavefronts() {
        // Remove entry f = (3,2): node 3 now only depends on node 0.
        let sparsified = figure1().filter(|r, c, _| !(r == 3 && c == 2));
        let dag = DependenceDag::build(&sparsified, Triangle::Lower);
        assert_eq!(dag.critical_path_len(), 2);
    }

    #[test]
    fn upper_triangle_reverses_direction() {
        let u = figure1().transpose();
        let dag = DependenceDag::build(&u, Triangle::Upper);
        assert_eq!(dag.predecessors(0), &[2, 3]);
        assert_eq!(dag.critical_path_len(), 3);
    }

    #[test]
    fn full_symmetric_matrix_ignores_other_triangle() {
        let l = figure1();
        let full = l.add(&l.transpose()).unwrap();
        let dag_full = DependenceDag::build(&full, Triangle::Lower);
        let dag_l = DependenceDag::build(&l, Triangle::Lower);
        assert_eq!(dag_full.n_edges(), dag_l.n_edges());
        assert_eq!(dag_full.critical_path_len(), dag_l.critical_path_len());
    }

    #[test]
    fn diagonal_matrix_is_one_wavefront() {
        let d = CsrMatrix::<f64>::identity(6);
        let dag = DependenceDag::build(&d, Triangle::Lower);
        assert_eq!(dag.n_edges(), 0);
        assert_eq!(dag.critical_path_len(), 1);
    }

    #[test]
    fn topological_check() {
        let dag = DependenceDag::build(&figure1(), Triangle::Lower);
        assert!(dag.is_topological(&[0, 1, 2, 3]));
        assert!(dag.is_topological(&[1, 0, 2, 3]));
        assert!(!dag.is_topological(&[3, 0, 1, 2]));
        assert!(!dag.is_topological(&[0, 0, 2, 3]));
        assert!(!dag.is_topological(&[0, 1, 2]));
    }
}
