//! Property-based tests of the wavefront machinery on randomized
//! structures.

use proptest::prelude::*;
use spcg_sparse::generators::{banded_spd, graph_laplacian, random_spd};
use spcg_sparse::permute::scrambled_perm;
use spcg_wavefront::{
    solve_blocks_with_threads, solve_levels_par, solve_lower_seq, solve_lower_sync_free,
    BlockOptions, BlockSchedule, DependenceDag, LevelSchedule, Triangle, WavefrontStats,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The level schedule is always a valid topological partition, on any
    /// structure (banded, random, scrambled).
    #[test]
    fn schedule_validates(n in 10usize..150, seed in 0u64..500, scramble in any::<bool>()) {
        let a = random_spd(n, 4, 1.4, seed);
        let a = if scramble {
            a.permute_sym(&scrambled_perm(n, seed ^ 99)).unwrap()
        } else {
            a
        };
        for tri in [Triangle::Lower, Triangle::Upper] {
            let s = LevelSchedule::build(&a, tri);
            prop_assert!(s.validate(&a));
            prop_assert_eq!(s.n_levels(), DependenceDag::build(&a, tri).critical_path_len());
        }
    }

    /// Level count is bounded by n and at least 1 for nonempty matrices;
    /// widths are consistent.
    #[test]
    fn stats_are_consistent(n in 5usize..100, seed in 0u64..300) {
        let a = banded_spd(n, 3, 0.7, 1.5, seed);
        let stats = WavefrontStats::of_matrix(&a);
        prop_assert!(stats.n_levels >= 1 && stats.n_levels <= n);
        prop_assert_eq!(stats.n_rows, n);
        prop_assert!(stats.max_width >= 1);
        prop_assert!(stats.max_width as f64 >= stats.mean_width);
        prop_assert!((stats.mean_width - n as f64 / stats.n_levels as f64).abs() < 1e-12);
    }

    /// Removing edges (sparsification) never deepens the DAG.
    #[test]
    fn edge_removal_is_monotone(n in 10usize..80, seed in 0u64..200, keep in 0.3f64..1.0) {
        let a = graph_laplacian(n, 4, 0.8, seed);
        let full = LevelSchedule::build(&a, Triangle::Lower).n_levels();
        // Deterministically drop off-diagonal entries by hash.
        let slim = a.filter(|r, c, _| {
            r == c || {
                let h = (r as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(c as u64)
                    .wrapping_mul(0xC2B2AE3D27D4EB4F);
                (h >> 32) as f64 / u32::MAX as f64 <= keep
            }
        });
        let slimmed = LevelSchedule::build(&slim, Triangle::Lower).n_levels();
        prop_assert!(slimmed <= full, "levels {full} -> {slimmed} after edge removal");
    }

    /// All three executors agree bitwise on arbitrary well-pivoted lower
    /// systems.
    #[test]
    fn executors_bitwise_agree(n in 5usize..120, seed in 0u64..300, threads in 1usize..8) {
        let a = banded_spd(n, 4, 0.8, 1.8, seed);
        let l = a.lower();
        let schedule = LevelSchedule::build(&l, Triangle::Lower);
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let mut x3 = vec![0.0; n];
        solve_lower_seq(&l, &b, &mut x1);
        solve_levels_par(&l, &schedule, &b, &mut x2);
        solve_lower_sync_free(&l, &b, &mut x3, threads);
        prop_assert_eq!(&x1, &x2);
        prop_assert_eq!(&x1, &x3);
    }

    /// Every chunked block schedule is a valid topological cover of its
    /// triangle, at any chunk size and on any structure: blocks partition
    /// the rows exactly once, every dependency either stays in-block
    /// (pointing at an earlier row in block order) or crosses to a block
    /// constructed earlier, and the release counters sum to the block
    /// graph's in-degree (one countdown per distinct cross-block edge).
    #[test]
    fn block_schedule_is_a_valid_topological_cover(
        n in 10usize..150,
        seed in 0u64..400,
        scramble in any::<bool>(),
        target in 1usize..64,
    ) {
        let a = random_spd(n, 4, 1.4, seed);
        let a = if scramble {
            a.permute_sym(&scrambled_perm(n, seed ^ 7)).unwrap()
        } else {
            a
        };
        for tri in [Triangle::Lower, Triangle::Upper] {
            let s = LevelSchedule::build(&a, tri);
            let blocks =
                BlockSchedule::from_levels_with(&a, &s, BlockOptions { target_rows: target });
            if let Err(e) = blocks.validate(&a) {
                prop_assert!(false, "invalid block schedule ({tri:?}, target {target}): {e}");
            }
            // Partition exactness, asserted directly so the property reads
            // off this test (validate re-checks it internally).
            let mut seen = vec![false; n];
            for b in 0..blocks.n_blocks() {
                for &r in blocks.block(b) {
                    prop_assert!(!seen[r], "row {r} covered twice");
                    seen[r] = true;
                }
            }
            prop_assert!(seen.iter().all(|&v| v), "some row was never covered");
            // Counters sum to the block-graph in-degree.
            let countdown_total: usize = blocks.in_degrees().iter().sum();
            prop_assert_eq!(countdown_total, blocks.n_edges());
            // Chunking respects the requested granularity: every block but
            // the last is exactly `target` rows.
            for b in 0..blocks.n_blocks().saturating_sub(1) {
                prop_assert_eq!(blocks.block(b).len(), target);
            }
        }
    }

    /// The dependency-block executor agrees bitwise with the sequential
    /// sweep at any thread count and chunk size — including target_rows=1,
    /// which maximizes cross-block edges and release-path contention.
    #[test]
    fn block_executor_bitwise_agrees(
        n in 5usize..120,
        seed in 0u64..300,
        threads in 1usize..8,
        target in 1usize..32,
    ) {
        let a = banded_spd(n, 4, 0.8, 1.8, seed);
        let l = a.lower();
        let schedule = LevelSchedule::build(&l, Triangle::Lower);
        let blocks =
            BlockSchedule::from_levels_with(&l, &schedule, BlockOptions { target_rows: target });
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        solve_lower_seq(&l, &b, &mut x1);
        solve_blocks_with_threads(&l, &blocks, &b, &mut x2, threads);
        prop_assert_eq!(&x1, &x2);
    }

    /// A topological execution order visits every predecessor first — the
    /// DAG checker itself must accept the schedule order and reject a
    /// reversed one whenever the matrix has at least one dependence.
    #[test]
    fn dag_checker_sanity(n in 8usize..60, seed in 0u64..200) {
        let a = banded_spd(n, 3, 0.9, 1.5, seed);
        let dag = DependenceDag::build(&a, Triangle::Lower);
        let order = LevelSchedule::build(&a, Triangle::Lower).execution_order();
        prop_assert!(dag.is_topological(&order));
        if dag.n_edges() > 0 {
            let reversed: Vec<usize> = order.iter().rev().copied().collect();
            prop_assert!(!dag.is_topological(&reversed));
        }
    }
}
