//! Solver configuration.

use serde::{Deserialize, Serialize};

/// How the residual tolerance is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ToleranceMode {
    /// Stop when `‖r_k‖₂ < tol` (the paper's "residual accuracy").
    Absolute,
    /// Stop when `‖r_k‖₂ < tol · ‖b‖₂`.
    RelativeToRhs,
}

/// Configuration for CG/PCG runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Convergence tolerance (interpreted per [`ToleranceMode`]).
    pub tol: f64,
    /// Tolerance interpretation.
    pub tol_mode: ToleranceMode,
    /// Iteration cap (the paper uses 1000).
    pub max_iters: usize,
    /// Record `‖r_k‖₂` per iteration (small overhead; needed by analyses).
    pub record_history: bool,
    /// Stagnation guard: stop with
    /// [`BreakdownKind::Stagnation`](crate::status::BreakdownKind) when the
    /// best residual seen has not improved for this many consecutive
    /// iterations. `0` disables the guard (the default, preserving the
    /// paper's run-to-the-cap behaviour).
    pub stagnation_window: usize,
    /// Divergence guard: stop with
    /// [`BreakdownKind::Divergence`](crate::status::BreakdownKind) when
    /// `‖r_k‖ > divergence_factor · ‖r_0‖`. Infinite disables the guard.
    pub divergence_factor: f64,
    /// Deadline watchdog: return
    /// [`SolverError::DeadlineExceeded`](crate::SolverError) once this many
    /// iterations have run without converging. Serving layers derive the
    /// budget from a wall-clock deadline via the gpusim per-iteration cost
    /// model; the in-loop check stays a single integer comparison so the hot
    /// loop remains zero-allocation. `usize::MAX` disables the guard (the
    /// default).
    pub deadline_iters: usize,
}

impl Default for SolverConfig {
    /// The paper's evaluation settings: residual accuracy `1e-12`, at most
    /// 1000 iterations (§4.3), interpreted relative to `‖b‖` so the same
    /// setting is meaningful in `f32`.
    fn default() -> Self {
        Self {
            tol: 1e-12,
            tol_mode: ToleranceMode::RelativeToRhs,
            max_iters: 1000,
            record_history: false,
            stagnation_window: 0,
            divergence_factor: 1e8,
            deadline_iters: usize::MAX,
        }
    }
}

impl SolverConfig {
    /// Builder-style tolerance override.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style tolerance-mode override.
    pub fn with_tol_mode(mut self, mode: ToleranceMode) -> Self {
        self.tol_mode = mode;
        self
    }

    /// Builder-style iteration-cap override.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style history toggle.
    pub fn with_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Builder-style stagnation-window override (`0` disables the guard).
    pub fn with_stagnation_window(mut self, window: usize) -> Self {
        self.stagnation_window = window;
        self
    }

    /// Builder-style divergence-factor override (`f64::INFINITY` disables
    /// the guard).
    pub fn with_divergence_factor(mut self, factor: f64) -> Self {
        self.divergence_factor = factor;
        self
    }

    /// Builder-style deadline-budget override (`usize::MAX` disables the
    /// watchdog).
    pub fn with_deadline_iters(mut self, iters: usize) -> Self {
        self.deadline_iters = iters;
        self
    }

    /// The stopping threshold for a given `‖b‖₂`.
    pub fn threshold(&self, b_norm: f64) -> f64 {
        match self.tol_mode {
            ToleranceMode::Absolute => self.tol,
            ToleranceMode::RelativeToRhs => self.tol * b_norm.max(f64::MIN_POSITIVE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SolverConfig::default();
        assert_eq!(c.tol, 1e-12);
        assert_eq!(c.max_iters, 1000);
    }

    #[test]
    fn threshold_modes() {
        let abs = SolverConfig::default().with_tol(1e-6).with_tol_mode(ToleranceMode::Absolute);
        assert_eq!(abs.threshold(100.0), 1e-6);
        let rel = abs.clone().with_tol_mode(ToleranceMode::RelativeToRhs);
        assert!((rel.threshold(100.0) - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn builders_chain() {
        let c = SolverConfig::default().with_tol(1e-8).with_max_iters(50).with_history(true);
        assert_eq!(c.tol, 1e-8);
        assert_eq!(c.max_iters, 50);
        assert!(c.record_history);
    }

    #[test]
    fn guards_are_off_or_loose_by_default() {
        let c = SolverConfig::default();
        assert_eq!(c.stagnation_window, 0, "stagnation guard must default off");
        assert!(c.divergence_factor >= 1e6, "divergence guard must default loose");
        let g = c.with_stagnation_window(25).with_divergence_factor(1e3);
        assert_eq!(g.stagnation_window, 25);
        assert_eq!(g.divergence_factor, 1e3);
    }

    #[test]
    fn deadline_defaults_off() {
        let c = SolverConfig::default();
        assert_eq!(c.deadline_iters, usize::MAX, "deadline watchdog must default off");
        let d = c.with_deadline_iters(40);
        assert_eq!(d.deadline_iters, 40);
    }
}
