//! Left-preconditioned conjugate gradient — Algorithm 1 of the paper,
//! hardened with per-iteration runtime guards.
//!
//! All entry points validate their inputs and return a typed
//! [`SolverError`] on malformed systems instead of panicking. Inside the
//! loop, cheap guards classify every breakdown into a
//! [`BreakdownKind`] — NaN/Inf, loss of
//! positive-definiteness, stagnation, divergence — so recovery layers
//! (the fallback ladder in `spcg-core`) can pick the right countermeasure.

use crate::config::{SolverConfig, ToleranceMode};
use crate::error::SolverError;
use crate::fault::{FaultKind, SolveFault};
use crate::status::{BreakdownKind, PhaseTimings, SolveResult, StopReason};
use crate::workspace::{SolveStats, SolveWorkspace};
use spcg_precond::Preconditioner;
use spcg_probe::{IterationEvent, NoProbe, Probe, ProbeStop, RefineEvent, Span};
use spcg_sparse::blas::{axpy, copy, dot, has_bad, norm2, xpby};
use spcg_sparse::spmv::spmv;
use spcg_sparse::{CsrMatrix, Scalar};
use std::time::Instant;

/// Minimum relative residual improvement (0.1%) for an iteration to count
/// as progress under the stagnation guard. ULP-sized jitter at the
/// rounding floor must not reset the window.
const STAGNATION_IMPROVEMENT: f64 = 1e-3;

/// Solves `A x = b` with the left-preconditioned CG of Algorithm 1.
///
/// Thin allocating wrapper over [`pcg_with_workspace`]: builds a fresh
/// [`SolveWorkspace`] per call. Amortize setup across repeated solves by
/// holding a workspace (or an `SpcgPlan` in `spcg-core`) and calling the
/// workspace entry points directly.
pub fn pcg<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
) -> Result<SolveResult<T>, SolverError> {
    let mut ws = SolveWorkspace::for_preconditioner(a.n_rows(), m);
    pcg_with_workspace(a, m, b, config, &mut ws)
}

/// Solves `A x = b` reusing `ws`, returning an owned [`SolveResult`] (the
/// iterate and history are copied out of the workspace after the loop).
/// The iteration loop itself allocates nothing once `ws` is warm.
pub fn pcg_with_workspace<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    ws: &mut SolveWorkspace<T>,
) -> Result<SolveResult<T>, SolverError> {
    let stats = pcg_in_place(a, m, b, config, ws)?;
    Ok(SolveResult {
        x: ws.solution().to_vec(),
        iterations: stats.iterations,
        final_residual: stats.final_residual,
        stop: stats.stop,
        residual_history: ws.history().to_vec(),
        timings: stats.timings,
    })
}

/// [`pcg_with_workspace`] with an optional deterministic [`SolveFault`],
/// for resilience harnesses that need an owned result from a poisoned run.
/// With `fault: None` the output is bitwise identical to
/// [`pcg_with_workspace`].
pub fn pcg_with_workspace_faulted<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    ws: &mut SolveWorkspace<T>,
) -> Result<SolveResult<T>, SolverError> {
    pcg_with_workspace_probed(a, m, b, config, fault, ws, &mut NoProbe)
}

/// [`pcg_with_workspace_faulted`] with an observability [`Probe`] receiving
/// spans, per-iteration events, and guard classifications. With
/// [`NoProbe`] this monomorphizes to exactly [`pcg_with_workspace_faulted`];
/// with any probe the numeric trajectory is bitwise identical — probes
/// observe, they never perturb.
pub fn pcg_with_workspace_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    ws: &mut SolveWorkspace<T>,
    probe: &mut P,
) -> Result<SolveResult<T>, SolverError> {
    let stats = pcg_in_place_probed(a, m, b, config, fault, ws, probe)?;
    Ok(SolveResult {
        x: ws.solution().to_vec(),
        iterations: stats.iterations,
        final_residual: stats.final_residual,
        stop: stats.stop,
        residual_history: ws.history().to_vec(),
        timings: stats.timings,
    })
}

/// The zero-allocation PCG hot path: solves `A x = b` entirely inside `ws`,
/// leaving the iterate in [`SolveWorkspace::solution`] and returning only
/// `Copy` statistics.
///
/// `ws` is grown on first use (dimension, preconditioner scratch, history
/// capacity); from the second call on, the whole solve — including every
/// iteration — performs no heap allocation. The trajectory is bitwise
/// identical to [`pcg`].
pub fn pcg_in_place<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    ws: &mut SolveWorkspace<T>,
) -> Result<SolveStats, SolverError> {
    pcg_in_place_faulted(a, m, b, config, None, ws)
}

/// [`pcg_in_place`] with an optional deterministic [`SolveFault`] — the
/// test harness entry point that proves the runtime guards catch and
/// classify injected failures. With `fault: None` the trajectory is
/// bitwise identical to [`pcg_in_place`].
///
/// The iteration follows the paper line by line: the residual test uses
/// `‖r_k‖₂` (line 6), `α` from `(r,z)/(p,Ap)` (line 10), `β` from the
/// ratio of successive `(r,z)` products (line 14). On top of that, each
/// iteration runs four O(1)-to-O(n) guards:
///
/// * **NaN/Inf** in the residual → [`BreakdownKind::Nan`];
/// * **divergence** `‖r_k‖ > divergence_factor · ‖r_0‖` →
///   [`BreakdownKind::Divergence`];
/// * **stagnation** (no relative improvement of the best residual by at
///   least 0.1% for `stagnation_window` consecutive iterations, when the
///   window is nonzero) → [`BreakdownKind::Stagnation`];
/// * **indefiniteness** `pᵀAp ≤ 0` or `zᵀr ≤ 0` →
///   [`BreakdownKind::Indefinite`].
pub fn pcg_in_place_faulted<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    ws: &mut SolveWorkspace<T>,
) -> Result<SolveStats, SolverError> {
    pcg_in_place_probed(a, m, b, config, fault, ws, &mut NoProbe)
}

/// Build a per-iteration probe event; `#[inline]` so that with [`NoProbe`]
/// the construction is dead code and vanishes entirely.
#[inline]
fn iter_event(k: usize, residual: f64, alpha: f64, beta: f64, guard: ProbeStop) -> IterationEvent {
    IterationEvent { k, residual, alpha, beta, guard }
}

/// The fully instrumented PCG hot path: [`pcg_in_place_faulted`] plus an
/// observability [`Probe`].
///
/// Span structure per solve: one [`Span::SolveLoop`] wrapping the whole
/// loop; inside each iteration a [`Span::Spmv`], two [`Span::Blas`] blocks
/// (α/update and β/update), and [`Span::PrecondApply`] around every
/// preconditioner application (including the initial `z0 = M⁻¹ r0`). Every
/// iteration emits one [`IterationEvent`]: `guard == Running` for a healthy
/// step (so the count of `Running` events always equals
/// [`SolveStats::iterations`]), or the firing guard's classification on the
/// stopping step.
///
/// With [`NoProbe`] every hook is an empty inlined body: the loop compiles
/// to the un-instrumented code, preserving the zero-allocation guarantee
/// and bitwise-identical trajectories.
pub fn pcg_in_place_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    ws: &mut SolveWorkspace<T>,
    probe: &mut P,
) -> Result<SolveStats, SolverError> {
    pcg_loop_probed(a, m, b, config, fault, false, ws, probe)
}

/// [`pcg_in_place_probed`] with an x₀ warm start: instead of `x0 = 0`, the
/// iterate is seeded from the workspace-resident previous solution
/// ([`SolveWorkspace::solution`], as left by the preceding solve on this
/// workspace) and the initial residual is computed as `r0 = b − A·x0` (one
/// extra SpMV). Every other line of the iteration is identical to the cold
/// entry point, so a warm start on a zeroed workspace reproduces the cold
/// trajectory exactly.
///
/// This is the sequence-of-systems hot path: for drifting-values sequences
/// the previous step's solution is an excellent initial guess and cuts the
/// iteration count well below a cold start.
#[allow(clippy::too_many_arguments)]
pub fn pcg_in_place_warm_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    ws: &mut SolveWorkspace<T>,
    probe: &mut P,
) -> Result<SolveStats, SolverError> {
    pcg_loop_probed(a, m, b, config, fault, true, ws, probe)
}

/// Shared loop body behind [`pcg_in_place_probed`] (cold) and
/// [`pcg_in_place_warm_probed`] (warm): the `warm` flag only selects how
/// `x0`/`r0` are initialized.
#[allow(clippy::too_many_arguments)]
fn pcg_loop_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    warm: bool,
    ws: &mut SolveWorkspace<T>,
    probe: &mut P,
) -> Result<SolveStats, SolverError> {
    if !a.is_square() {
        return Err(SolverError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let n = a.n_rows();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }
    if b.len() != n {
        return Err(SolverError::RhsLength { expected: n, got: b.len() });
    }
    if m.dim() != n {
        return Err(SolverError::PreconditionerDim { expected: n, got: m.dim() });
    }

    let history_cap = if config.record_history { config.max_iters + 1 } else { 0 };
    ws.ensure(n, m.scratch_len(), m.staging_len(), history_cap);
    let SolveWorkspace { x, r, z, w, p, scratch, staging_lo, history, .. } = ws;
    // ensure() never shrinks, so reborrow at the solve dimension.
    let (x, r) = (&mut x[..n], &mut r[..n]);
    let (z, w, p) = (&mut z[..n], &mut w[..n], &mut p[..n]);
    history.clear();

    let mut timings = PhaseTimings::default();
    let loop_start = Instant::now();
    probe.span_begin(Span::SolveLoop);

    if warm {
        // x0 = previous solution (already resident in ws.x), r0 = b - A x0.
        spmv(a, x, r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
    } else {
        // x0 = 0, r0 = b - A x0 = b (line 1-2)
        x.fill(T::ZERO);
        copy(b, r);
    }

    let b_norm = norm2(b).to_f64();
    let threshold = config.threshold(b_norm);
    let divergence_limit = if config.divergence_factor.is_finite() {
        config.divergence_factor * b_norm.max(f64::MIN_POSITIVE)
    } else {
        f64::INFINITY
    };

    // z0 = M⁻¹ r0, p0 = z0 (lines 3-4)
    let t = Instant::now();
    probe.span_begin(Span::PrecondApply);
    m.apply_staged(r, z, scratch, staging_lo);
    probe.span_end(Span::PrecondApply);
    timings.precond += t.elapsed();
    copy(z, p);
    let mut rz = dot(r, z).to_f64();

    let mut iterations = 0usize;
    let mut stop = StopReason::MaxIterations;
    let mut best_residual = f64::INFINITY;
    let mut iters_since_best = 0usize;
    // Plain minimum of every finite residual seen, independent of the
    // stagnation guard's relative-improvement rule: the deadline error
    // reports how far the cut-off solve actually got.
    let mut best_seen = f64::INFINITY;

    for k in 0..config.max_iters {
        if let Some(f) = fault {
            if f.at_iteration == k {
                match f.kind {
                    FaultKind::Nan => r[0] = T::from_f64(f64::NAN),
                    // A reduced-precision apply that underflowed: the
                    // preconditioned residual collapses to zero, so the
                    // `rᵀz ≤ 0` guard classifies the stall as Indefinite.
                    FaultKind::StalledPrecond => {
                        z.fill(T::ZERO);
                        rz = 0.0;
                    }
                }
            }
        }

        // line 6: convergence test on ‖r_k‖, then the runtime guards
        let r_norm = norm2(r).to_f64();
        if config.record_history {
            history.push(r_norm);
        }
        if !r_norm.is_finite() || has_bad(r) {
            stop = StopReason::Breakdown(BreakdownKind::Nan);
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Nan));
            break;
        }
        if r_norm < best_seen {
            best_seen = r_norm;
        }
        if r_norm < threshold {
            stop = StopReason::Converged;
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Converged));
            break;
        }
        // Deadline watchdog: one integer comparison, checked after the
        // convergence test so a solve that finishes exactly on budget still
        // reports success. Disabled (usize::MAX) it can never fire.
        if k >= config.deadline_iters {
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Deadline));
            probe.span_end(Span::SolveLoop);
            return Err(SolverError::DeadlineExceeded { best_residual: best_seen, iterations: k });
        }
        if r_norm > divergence_limit {
            stop = StopReason::Breakdown(BreakdownKind::Divergence);
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Divergence));
            break;
        }
        if config.stagnation_window > 0 {
            // An iteration only counts as progress when the residual improves
            // by a meaningful *relative* margin; at the rounding floor the
            // residual jitters by ULP-sized amounts that would otherwise keep
            // resetting the window and mask the stagnation.
            if r_norm < best_residual * (1.0 - STAGNATION_IMPROVEMENT) {
                best_residual = r_norm;
                iters_since_best = 0;
            } else {
                iters_since_best += 1;
                if iters_since_best >= config.stagnation_window {
                    stop = StopReason::Breakdown(BreakdownKind::Stagnation);
                    probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Stagnation));
                    break;
                }
            }
        }

        // line 9: w = A p
        let t = Instant::now();
        probe.span_begin(Span::Spmv);
        spmv(a, p, w);
        probe.span_end(Span::Spmv);
        timings.spmv += t.elapsed();

        // line 10: α = (r,z)/(p,w), guarded for NaN and indefiniteness
        let t = Instant::now();
        probe.span_begin(Span::Blas);
        let pw = dot(p, w).to_f64();
        if !pw.is_finite() || !rz.is_finite() {
            stop = StopReason::Breakdown(BreakdownKind::Nan);
            probe.span_end(Span::Blas);
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Nan));
            break;
        }
        if pw <= 0.0 || rz <= 0.0 {
            stop = StopReason::Breakdown(BreakdownKind::Indefinite);
            probe.span_end(Span::Blas);
            probe.iteration(iter_event(k, r_norm, 0.0, 0.0, ProbeStop::Indefinite));
            break;
        }
        let alpha_f64 = rz / pw;
        let alpha = T::from_f64(alpha_f64);

        // lines 11-12: x += α p; r -= α w
        axpy(alpha, p, x);
        axpy(-alpha, w, r);
        probe.span_end(Span::Blas);
        timings.blas += t.elapsed();

        // line 13: z = M⁻¹ r
        let t = Instant::now();
        probe.span_begin(Span::PrecondApply);
        m.apply_staged(r, z, scratch, staging_lo);
        probe.span_end(Span::PrecondApply);
        timings.precond += t.elapsed();

        // lines 14-15: β = (r₊,z₊)/(r,z); p = z + β p
        let t = Instant::now();
        probe.span_begin(Span::Blas);
        let rz_new = dot(r, z).to_f64();
        let beta_f64 = rz_new / rz;
        let beta = T::from_f64(beta_f64);
        rz = rz_new;
        xpby(z, beta, p);
        probe.span_end(Span::Blas);
        timings.blas += t.elapsed();

        probe.iteration(iter_event(k, r_norm, alpha_f64, beta_f64, ProbeStop::Running));
        iterations += 1;
    }
    probe.span_end(Span::SolveLoop);

    // Re-check convergence when the loop ran out exactly at max_iters.
    let final_residual = norm2(r).to_f64();
    if stop == StopReason::MaxIterations && final_residual < threshold {
        stop = StopReason::Converged;
    }
    if final_residual.is_nan() {
        stop = StopReason::Breakdown(BreakdownKind::Nan);
    }
    timings.total = loop_start.elapsed();

    Ok(SolveStats { iterations, final_residual, stop, timings })
}

/// Outcome of an iterative-refinement PCG run: the combined solve
/// statistics plus how many refinement restarts it took.
#[derive(Debug, Clone, Copy)]
pub struct RefinedStats {
    /// Combined statistics across the initial solve and every restart:
    /// `iterations` is the total, `final_residual` is the *exact* residual
    /// `‖b − A·x‖₂` (not the recurrence's), `stop`/`timings` are aggregated.
    pub stats: SolveStats,
    /// Refinement restarts performed (0 = the initial solve sufficed).
    pub restarts: usize,
}

/// [`pcg_refined_in_place_probed`] without instrumentation.
pub fn pcg_refined_in_place<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    max_restarts: usize,
    ws: &mut SolveWorkspace<T>,
) -> Result<RefinedStats, SolverError> {
    pcg_refined_in_place_probed(a, m, b, config, None, max_restarts, ws, &mut NoProbe)
}

/// PCG under an iterative-refinement outer loop — the full-precision
/// recurrence that recovers accuracy from a reduced-precision
/// preconditioner.
///
/// Runs [`pcg_in_place_probed`] and, whenever the recurrence *stalls*
/// (stagnation breakdown, or the iteration cap with the residual still
/// above threshold), restarts it on the exact residual: with `x` the
/// accumulated iterate, it computes `r = b − A·x` in full precision and
/// solves the correction system `A·d = r` to the same absolute threshold,
/// accumulating `x ← x + d`. Up to `max_restarts` corrections are
/// attempted; each restart is announced to the probe as a
/// [`RefineEvent`]. Hard breakdowns (NaN, divergence, indefiniteness) are
/// returned immediately — they are the fallback ladder's job, not
/// refinement's.
///
/// The accumulated iterate is left in [`SolveWorkspace::solution`]. All
/// buffers (including the refinement accumulator and exact-residual
/// vector) come from `ws`, so warm calls allocate nothing. With
/// `max_restarts == 0` and no stall the trajectory — and the workspace
/// contents — are bitwise identical to [`pcg_in_place_probed`].
#[allow(clippy::too_many_arguments)]
pub fn pcg_refined_in_place_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    config: &SolverConfig,
    fault: Option<SolveFault>,
    max_restarts: usize,
    ws: &mut SolveWorkspace<T>,
    probe: &mut P,
) -> Result<RefinedStats, SolverError> {
    let mut stats = pcg_in_place_probed(a, m, b, config, fault, ws, probe)?;
    let needs_refinement = |s: &SolveStats| {
        matches!(
            s.stop,
            StopReason::MaxIterations | StopReason::Breakdown(BreakdownKind::Stagnation)
        )
    };
    if max_restarts == 0 || !needs_refinement(&stats) {
        return Ok(RefinedStats { stats, restarts: 0 });
    }

    let n = a.n_rows();
    let threshold = config.threshold(norm2(b).to_f64());
    // The correction system `A d = r_exact` shares the outer system's
    // residual: `‖b − A(x + d)‖ = ‖r_exact − A d‖`, so the inner solve
    // targets the outer threshold as an absolute tolerance.
    let correction_config = config
        .clone()
        .with_tol(threshold.max(f64::MIN_POSITIVE))
        .with_tol_mode(ToleranceMode::Absolute);

    let (mut x_acc, mut r_exact) = ws.take_refine(n);
    x_acc.copy_from_slice(ws.solution());
    let mut restarts = 0usize;
    while restarts < max_restarts && needs_refinement(&stats) {
        // Exact residual of the accumulated iterate, in full precision.
        spmv(a, &x_acc, &mut r_exact);
        for (ri, &bi) in r_exact.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let exact_norm = norm2(&r_exact).to_f64();
        restarts += 1;
        probe.refine_restart(&RefineEvent {
            restart: restarts,
            residual: exact_norm,
            iterations: stats.iterations,
        });
        if exact_norm < threshold {
            // The recurrence's residual drifted pessimistic: the iterate
            // is already converged in exact arithmetic.
            stats.stop = StopReason::Converged;
            break;
        }
        let correction = pcg_in_place_probed(a, m, &r_exact, &correction_config, None, ws, probe)?;
        for (acc, &d) in x_acc.iter_mut().zip(ws.solution()) {
            *acc += d;
        }
        stats = SolveStats {
            iterations: stats.iterations + correction.iterations,
            final_residual: correction.final_residual,
            stop: correction.stop,
            timings: PhaseTimings {
                spmv: stats.timings.spmv + correction.timings.spmv,
                precond: stats.timings.precond + correction.timings.precond,
                blas: stats.timings.blas + correction.timings.blas,
                total: stats.timings.total + correction.timings.total,
            },
        };
    }

    // Leave the accumulated iterate in the workspace and report the exact
    // residual it actually achieves.
    ws.solution_mut().copy_from_slice(&x_acc);
    spmv(a, &x_acc, &mut r_exact);
    for (ri, &bi) in r_exact.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    stats.final_residual = norm2(&r_exact).to_f64();
    if stats.final_residual < threshold {
        stats.stop = StopReason::Converged;
    }
    ws.restore_refine(x_acc, r_exact);
    Ok(RefinedStats { stats, restarts })
}

/// FLOPs per PCG iteration for cost accounting: one SpMV (2·nnz(A)), the
/// preconditioner solves (2·nnz(M)), two dots + three axpy-like updates
/// (10·n). Matches the paper's convention of pricing the *non-sparsified*
/// baseline and reusing it for all methods.
pub fn pcg_iteration_flops(nnz_a: usize, nnz_m: usize, n: usize) -> u64 {
    (2 * nnz_a + 2 * nnz_m + 10 * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ToleranceMode;
    use spcg_precond::{ilu0, ExecutionStrategy, IdentityPreconditioner, JacobiPreconditioner};
    use spcg_sparse::generators::{banded_spd, poisson_2d};
    use spcg_sparse::Rng;

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
    }

    fn check_solution(a: &CsrMatrix<f64>, b: &[f64], x: &[f64], tol: f64) {
        let mut ax = vec![0.0; b.len()];
        spmv(a, x, &mut ax);
        let err: f64 =
            ax.iter().zip(b).map(|(got, want)| (got - want) * (got - want)).sum::<f64>().sqrt();
        assert!(err < tol, "residual {err} exceeds {tol}");
    }

    #[test]
    fn unpreconditioned_cg_solves_poisson() {
        let a = poisson_2d(10, 10);
        let b = rhs(100, 1);
        let m = IdentityPreconditioner::new(100);
        let res = pcg(&a, &m, &b, &SolverConfig::default().with_tol(1e-10)).unwrap();
        assert!(res.converged(), "stop: {:?}", res.stop);
        check_solution(&a, &b, &res.x, 1e-7);
    }

    #[test]
    fn ilu0_preconditioning_reduces_iterations() {
        let a = poisson_2d(20, 20);
        let b = rhs(400, 2);
        let cfg = SolverConfig::default().with_tol(1e-10);
        let plain = pcg(&a, &IdentityPreconditioner::new(400), &b, &cfg).unwrap();
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let pre = pcg(&a, &f, &b, &cfg).unwrap();
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "ILU(0) {} should beat identity {}",
            pre.iterations,
            plain.iterations
        );
        check_solution(&a, &b, &pre.x, 1e-7);
    }

    #[test]
    fn jacobi_preconditioning_works() {
        let a = banded_spd(80, 5, 0.6, 2.0, 3);
        let b = rhs(80, 4);
        let m = JacobiPreconditioner::new(&a).unwrap();
        let res = pcg(&a, &m, &b, &SolverConfig::default().with_tol(1e-11)).unwrap();
        assert!(res.converged());
        check_solution(&a, &b, &res.x, 1e-8);
    }

    #[test]
    fn exact_preconditioner_converges_in_few_iterations() {
        // With M⁻¹ == A⁻¹ (ILU(K) large K == exact LU), PCG needs ~1 step.
        let a = banded_spd(30, 3, 0.9, 2.0, 5);
        let b = rhs(30, 6);
        let f = spcg_precond::iluk(&a, 40, ExecutionStrategy::Sequential).unwrap();
        let res = pcg(&a, &f, &b, &SolverConfig::default().with_tol(1e-10)).unwrap();
        assert!(res.converged());
        assert!(
            res.iterations <= 3,
            "exact M should converge almost immediately, got {}",
            res.iterations
        );
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = poisson_2d(5, 5);
        let m = IdentityPreconditioner::new(25);
        let res = pcg(&a, &m, &[0.0; 25], &SolverConfig::default()).unwrap();
        assert!(res.converged());
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_iterations_is_respected() {
        let a = poisson_2d(30, 30);
        let b = rhs(900, 7);
        let m = IdentityPreconditioner::new(900);
        let cfg = SolverConfig::default()
            .with_tol(1e-14)
            .with_tol_mode(ToleranceMode::Absolute)
            .with_max_iters(3);
        let res = pcg(&a, &m, &b, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::MaxIterations);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn history_records_monotonic_trend() {
        let a = poisson_2d(12, 12);
        let b = rhs(144, 8);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let res =
            pcg(&a, &f, &b, &SolverConfig::default().with_history(true).with_tol(1e-10)).unwrap();
        assert!(res.converged());
        assert_eq!(res.residual_history.len(), res.iterations + 1);
        // First residual is ‖b‖, last recorded one is above the final.
        assert!(res.residual_history[0] > *res.residual_history.last().unwrap());
    }

    #[test]
    fn non_spd_matrix_breaks_down_as_indefinite() {
        // A negative-definite matrix: pᵀAp < 0 on the first iteration.
        let a = poisson_2d(4, 4).map_values(|v| -v);
        let b = rhs(16, 9);
        let m = IdentityPreconditioner::new(16);
        let res = pcg(&a, &m, &b, &SolverConfig::default()).unwrap();
        assert_eq!(res.stop, StopReason::Breakdown(BreakdownKind::Indefinite));
    }

    #[test]
    fn f32_solve_converges_at_f32_tolerance() {
        let a: CsrMatrix<f32> = poisson_2d(10, 10).cast();
        let b: Vec<f32> = rhs(100, 10).into_iter().map(|v| v as f32).collect();
        let m = IdentityPreconditioner::new(100);
        let cfg = SolverConfig::default().with_tol(1e-5);
        let res = pcg(&a, &m, &b, &cfg).unwrap();
        assert!(res.converged(), "stop {:?} residual {}", res.stop, res.final_residual);
    }

    #[test]
    fn parallel_ilu_application_gives_identical_trajectory() {
        let a = poisson_2d(16, 16);
        let b = rhs(256, 11);
        let cfg = SolverConfig::default().with_history(true).with_tol(1e-10);
        let fs = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let fp = ilu0(&a, ExecutionStrategy::LevelBarrier).unwrap();
        let rs = pcg(&a, &fs, &b, &cfg).unwrap();
        let rp = pcg(&a, &fp, &b, &cfg).unwrap();
        assert_eq!(rs.iterations, rp.iterations);
        assert_eq!(rs.residual_history, rp.residual_history);
        assert_eq!(rs.x, rp.x);
    }

    #[test]
    fn flop_model_is_linear() {
        assert_eq!(pcg_iteration_flops(10, 20, 5), 2 * 10 + 2 * 20 + 50);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        let a = poisson_2d(14, 14);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10).with_history(true);
        let mut ws = SolveWorkspace::for_preconditioner(a.n_rows(), &f);
        for seed in 0..3 {
            let b = rhs(196, seed);
            let fresh = pcg(&a, &f, &b, &cfg).unwrap();
            let reused = pcg_with_workspace(&a, &f, &b, &cfg, &mut ws).unwrap();
            assert_eq!(fresh.x, reused.x, "iterate differs on seed {seed}");
            assert_eq!(fresh.residual_history, reused.residual_history);
            assert_eq!(fresh.iterations, reused.iterations);
        }
    }

    #[test]
    fn in_place_solve_leaves_solution_in_workspace() {
        let a = poisson_2d(12, 12);
        let b = rhs(144, 5);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10);
        let mut ws = SolveWorkspace::for_preconditioner(144, &f);
        let stats = pcg_in_place(&a, &f, &b, &cfg, &mut ws).unwrap();
        assert!(stats.converged());
        check_solution(&a, &b, ws.solution(), 1e-7);
        let owned = pcg(&a, &f, &b, &cfg).unwrap();
        assert_eq!(owned.x.as_slice(), ws.solution());
    }

    #[test]
    fn workspace_grows_across_systems() {
        // A small-system workspace must transparently serve a larger one,
        // and retain the larger allocation afterwards.
        let small = poisson_2d(5, 5);
        let large = poisson_2d(10, 10);
        let cfg = SolverConfig::default().with_tol(1e-10);
        let m_small = IdentityPreconditioner::new(25);
        let m_large = IdentityPreconditioner::new(100);
        let mut ws = SolveWorkspace::for_preconditioner(25, &m_small);
        let r1 = pcg_with_workspace(&small, &m_small, &rhs(25, 1), &cfg, &mut ws).unwrap();
        assert!(r1.converged());
        let r2 = pcg_with_workspace(&large, &m_large, &rhs(100, 2), &cfg, &mut ws).unwrap();
        assert!(r2.converged());
        assert_eq!(r2.x.len(), 100);
        let r3 = pcg_with_workspace(&small, &m_small, &rhs(25, 3), &cfg, &mut ws).unwrap();
        assert!(r3.converged());
        assert_eq!(r3.x.len(), 25);
    }

    // ---- typed input validation -------------------------------------------

    #[test]
    fn non_square_matrix_is_a_typed_error() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        let m = IdentityPreconditioner::new(2);
        let err = pcg(&a, &m, &[1.0, 1.0], &SolverConfig::default()).unwrap_err();
        assert_eq!(err, SolverError::NotSquare { n_rows: 2, n_cols: 3 });
    }

    #[test]
    fn rhs_length_mismatch_is_a_typed_error() {
        let a = poisson_2d(3, 3);
        let m = IdentityPreconditioner::new(9);
        let err = pcg(&a, &m, &[1.0; 5], &SolverConfig::default()).unwrap_err();
        assert_eq!(err, SolverError::RhsLength { expected: 9, got: 5 });
    }

    #[test]
    fn preconditioner_dim_mismatch_is_a_typed_error() {
        let a = poisson_2d(3, 3);
        let m = IdentityPreconditioner::new(4);
        let err = pcg(&a, &m, &[1.0; 9], &SolverConfig::default()).unwrap_err();
        assert_eq!(err, SolverError::PreconditionerDim { expected: 9, got: 4 });
    }

    #[test]
    fn empty_system_is_a_typed_error() {
        let a = CsrMatrix::<f64>::identity(0);
        let m = IdentityPreconditioner::new(0);
        let err = pcg(&a, &m, &[], &SolverConfig::default()).unwrap_err();
        assert_eq!(err, SolverError::EmptySystem);
    }

    // ---- runtime guards ----------------------------------------------------

    #[test]
    fn stagnation_window_stops_hopeless_solves() {
        // Singular A = diag(0, 1, 2, ..., n-1) with a right-hand side that
        // has a component in the null space: the null-space residual is
        // exactly invariant under the CG update, so ‖r‖ has a hard floor
        // and the window guard must fire long before the iteration cap.
        let n = 24;
        let diag: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a = CsrMatrix::from_raw(n, n, (0..=n).collect(), (0..n).collect(), diag).unwrap();
        let b = vec![1.0f64; n];
        let m = IdentityPreconditioner::new(n);
        let cfg = SolverConfig::default()
            .with_tol(1e-30)
            .with_tol_mode(ToleranceMode::Absolute)
            .with_stagnation_window(10);
        let res = pcg(&a, &m, &b, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::Breakdown(BreakdownKind::Stagnation));
        assert!(res.iterations < cfg.max_iters, "guard must fire before the cap");
        // The residual can never drop below the invariant null-space
        // component |b[0]| = 1, and the guard stops it while still finite.
        assert!(res.final_residual >= 1.0, "final_residual = {}", res.final_residual);
        assert!(res.final_residual.is_finite());
    }

    #[test]
    fn divergence_guard_classifies_growth() {
        let a = poisson_2d(6, 6);
        let b = rhs(36, 4);
        let m = IdentityPreconditioner::new(36);
        // A sub-1 factor makes the guard fire on the very first residual,
        // exercising the classification path deterministically.
        let cfg = SolverConfig::default().with_divergence_factor(0.5);
        let res = pcg(&a, &m, &b, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::Breakdown(BreakdownKind::Divergence));
    }

    #[test]
    fn guards_disabled_reproduce_the_unguarded_trajectory() {
        let a = poisson_2d(14, 14);
        let b = rhs(196, 6);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let plain = SolverConfig::default().with_tol(1e-10).with_history(true);
        let guarded = plain.clone().with_stagnation_window(50).with_divergence_factor(1e4);
        let r1 = pcg(&a, &f, &b, &plain).unwrap();
        let r2 = pcg(&a, &f, &b, &guarded).unwrap();
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.residual_history, r2.residual_history);
        assert_eq!(r1.stop, r2.stop);
    }

    // ---- deadline watchdog -------------------------------------------------

    #[test]
    fn deadline_budget_cuts_off_with_best_residual() {
        let a = poisson_2d(30, 30);
        let b = rhs(900, 7);
        let m = IdentityPreconditioner::new(900);
        let cfg = SolverConfig::default()
            .with_tol(1e-14)
            .with_tol_mode(ToleranceMode::Absolute)
            .with_deadline_iters(5);
        let err = pcg(&a, &m, &b, &cfg).unwrap_err();
        match err {
            SolverError::DeadlineExceeded { best_residual, iterations } => {
                assert_eq!(iterations, 5, "watchdog must fire exactly at the budget");
                assert!(best_residual.is_finite() && best_residual > 0.0);
                // The reference run's residual trajectory bounds the reported best.
                let full = pcg(&a, &m, &b, &SolverConfig::default().with_history(true)).unwrap();
                let min5 =
                    full.residual_history[..=5].iter().cloned().fold(f64::INFINITY, f64::min);
                assert!((best_residual - min5).abs() <= 1e-12 * min5.max(1.0));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn convergence_beats_the_deadline_on_the_same_iteration() {
        // Budget far above the iterations the solve needs: never fires.
        let a = poisson_2d(10, 10);
        let b = rhs(100, 1);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let quick = pcg(&a, &f, &b, &SolverConfig::default().with_tol(1e-10)).unwrap();
        assert!(quick.converged());
        // Budget exactly equal to the converging iteration: the convergence
        // test runs first, so the solve still succeeds.
        let cfg = SolverConfig::default().with_tol(1e-10).with_deadline_iters(quick.iterations);
        let res = pcg(&a, &f, &b, &cfg).unwrap();
        assert!(res.converged());
        assert_eq!(res.iterations, quick.iterations);
    }

    #[test]
    fn disabled_deadline_is_bitwise_identical() {
        let a = poisson_2d(14, 14);
        let b = rhs(196, 6);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let plain = SolverConfig::default().with_tol(1e-10).with_history(true);
        let explicit = plain.clone().with_deadline_iters(usize::MAX);
        let r1 = pcg(&a, &f, &b, &plain).unwrap();
        let r2 = pcg(&a, &f, &b, &explicit).unwrap();
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.residual_history, r2.residual_history);
    }

    // ---- fault injection ---------------------------------------------------

    #[test]
    fn injected_nan_is_caught_and_classified() {
        let a = poisson_2d(10, 10);
        let b = rhs(100, 12);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10).with_history(true);
        let mut ws = SolveWorkspace::for_preconditioner(100, &f);
        let stats =
            pcg_in_place_faulted(&a, &f, &b, &cfg, Some(SolveFault::nan_at(3)), &mut ws).unwrap();
        assert_eq!(stats.stop, StopReason::Breakdown(BreakdownKind::Nan));
        assert_eq!(stats.iterations, 3, "fault at k=3 must stop the loop there");
        assert!(stats.final_residual.is_nan());
    }

    // ---- warm starts -------------------------------------------------------

    #[test]
    fn warm_start_on_zeroed_workspace_matches_cold() {
        let a = poisson_2d(12, 12);
        let b = rhs(144, 21);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10).with_history(true);
        let mut cold_ws = SolveWorkspace::for_preconditioner(144, &f);
        let mut warm_ws = SolveWorkspace::for_preconditioner(144, &f);
        let cold = pcg_in_place(&a, &f, &b, &cfg, &mut cold_ws).unwrap();
        let warm =
            pcg_in_place_warm_probed(&a, &f, &b, &cfg, None, &mut warm_ws, &mut NoProbe).unwrap();
        assert_eq!(cold_ws.solution(), warm_ws.solution());
        assert_eq!(cold_ws.history(), warm_ws.history());
        assert_eq!(cold.iterations, warm.iterations);
    }

    #[test]
    fn warm_start_from_the_solution_converges_immediately() {
        let a = poisson_2d(14, 14);
        let b = rhs(196, 22);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10);
        let mut ws = SolveWorkspace::for_preconditioner(196, &f);
        let cold = pcg_in_place(&a, &f, &b, &cfg, &mut ws).unwrap();
        assert!(cold.converged() && cold.iterations > 0);
        // Re-solving the same system warm from its own solution: the
        // initial residual is already below threshold.
        let warm = pcg_in_place_warm_probed(&a, &f, &b, &cfg, None, &mut ws, &mut NoProbe).unwrap();
        assert!(warm.converged());
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn warm_start_saves_iterations_on_a_drifted_system() {
        let a = poisson_2d(16, 16);
        let b = rhs(256, 23);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10);
        let mut ws = SolveWorkspace::for_preconditioner(256, &f);
        pcg_in_place(&a, &f, &b, &cfg, &mut ws).unwrap();
        // A mildly perturbed right-hand side: the previous solution is a
        // good guess, so the warm solve needs strictly fewer iterations.
        let b2: Vec<f64> =
            b.iter().enumerate().map(|(i, &v)| v * (1.0 + 1e-3 * (i % 7) as f64)).collect();
        let mut cold_ws = SolveWorkspace::for_preconditioner(256, &f);
        let cold = pcg_in_place(&a, &f, &b2, &cfg, &mut cold_ws).unwrap();
        let warm =
            pcg_in_place_warm_probed(&a, &f, &b2, &cfg, None, &mut ws, &mut NoProbe).unwrap();
        assert!(warm.converged() && cold.converged());
        assert!(
            warm.iterations < cold.iterations,
            "warm {} should beat cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn no_fault_is_bitwise_identical_to_plain_entry_point() {
        let a = poisson_2d(12, 12);
        let b = rhs(144, 13);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let cfg = SolverConfig::default().with_tol(1e-10).with_history(true);
        let mut ws1 = SolveWorkspace::for_preconditioner(144, &f);
        let mut ws2 = SolveWorkspace::for_preconditioner(144, &f);
        let plain = pcg_in_place(&a, &f, &b, &cfg, &mut ws1).unwrap();
        let faulted = pcg_in_place_faulted(&a, &f, &b, &cfg, None, &mut ws2).unwrap();
        assert_eq!(ws1.solution(), ws2.solution());
        assert_eq!(ws1.history(), ws2.history());
        assert_eq!(plain.iterations, faulted.iterations);
        assert_eq!(plain.stop, faulted.stop);
    }
}
