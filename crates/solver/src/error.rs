//! Typed errors for malformed solve inputs.
//!
//! The public solve entry points validate their inputs and return a
//! [`SolverError`] instead of panicking, so service callers can surface a
//! diagnosable error to their users. The error type is `Copy` and carries
//! no heap data — constructing one on the validation path keeps the hot
//! loop's zero-allocation contract intact.

use std::fmt;

/// Why a solve request was rejected before any iteration ran, or cut off
/// mid-run by the deadline watchdog.
///
/// Not `Eq` because [`SolverError::DeadlineExceeded`] carries the
/// best-so-far residual as an `f64`; it stays `Copy` so the guard path can
/// construct one without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverError {
    /// The system matrix is not square.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// The right-hand side length does not match the system dimension.
    RhsLength {
        /// System dimension `n`.
        expected: usize,
        /// Provided right-hand-side length.
        got: usize,
    },
    /// The preconditioner was built for a different dimension.
    PreconditionerDim {
        /// System dimension `n`.
        expected: usize,
        /// Preconditioner dimension.
        got: usize,
    },
    /// The system (and right-hand side) are empty — there is nothing to
    /// solve and no meaningful result to return.
    EmptySystem,
    /// The iteration-count deadline budget
    /// ([`SolverConfig::deadline_iters`](crate::SolverConfig)) expired before
    /// the solve converged. Carries the best residual norm observed so the
    /// caller can judge how far the partial solve got.
    DeadlineExceeded {
        /// Smallest `‖r_k‖₂` seen before the budget expired.
        best_residual: f64,
        /// Iterations completed when the watchdog fired.
        iterations: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotSquare { n_rows, n_cols } => {
                write!(f, "solver requires a square matrix, got {n_rows}x{n_cols}")
            }
            SolverError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, system dimension is {expected}")
            }
            SolverError::PreconditionerDim { expected, got } => {
                write!(
                    f,
                    "preconditioner dimension {got} does not match system dimension {expected}"
                )
            }
            SolverError::EmptySystem => write!(f, "cannot solve an empty (0-dimensional) system"),
            SolverError::DeadlineExceeded { best_residual, iterations } => {
                write!(
                    f,
                    "deadline budget expired after {iterations} iterations \
                     (best residual {best_residual:.3e})"
                )
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_dimensions() {
        let e = SolverError::NotSquare { n_rows: 3, n_cols: 5 };
        assert!(e.to_string().contains("3x5"));
        let e = SolverError::RhsLength { expected: 10, got: 7 };
        assert!(e.to_string().contains('7') && e.to_string().contains("10"));
        let e = SolverError::PreconditionerDim { expected: 4, got: 9 };
        assert!(e.to_string().contains('9'));
        assert!(SolverError::EmptySystem.to_string().contains("empty"));
    }

    #[test]
    fn deadline_exceeded_reports_progress() {
        let e = SolverError::DeadlineExceeded { best_residual: 2.5e-4, iterations: 37 };
        let s = e.to_string();
        assert!(s.contains("37"), "{s}");
        assert!(s.contains("2.500e-4") || s.contains("2.5e-4"), "{s}");
        // Stays Copy + PartialEq for typed matching in callers.
        let copy = e;
        assert_eq!(copy, e);
    }
}
