//! Typed errors for malformed solve inputs.
//!
//! The public solve entry points validate their inputs and return a
//! [`SolverError`] instead of panicking, so service callers can surface a
//! diagnosable error to their users. The error type is `Copy` and carries
//! no heap data — constructing one on the validation path keeps the hot
//! loop's zero-allocation contract intact.

use std::fmt;

/// Why a solve request was rejected before any iteration ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// The system matrix is not square.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// The right-hand side length does not match the system dimension.
    RhsLength {
        /// System dimension `n`.
        expected: usize,
        /// Provided right-hand-side length.
        got: usize,
    },
    /// The preconditioner was built for a different dimension.
    PreconditionerDim {
        /// System dimension `n`.
        expected: usize,
        /// Preconditioner dimension.
        got: usize,
    },
    /// The system (and right-hand side) are empty — there is nothing to
    /// solve and no meaningful result to return.
    EmptySystem,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotSquare { n_rows, n_cols } => {
                write!(f, "solver requires a square matrix, got {n_rows}x{n_cols}")
            }
            SolverError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, system dimension is {expected}")
            }
            SolverError::PreconditionerDim { expected, got } => {
                write!(
                    f,
                    "preconditioner dimension {got} does not match system dimension {expected}"
                )
            }
            SolverError::EmptySystem => write!(f, "cannot solve an empty (0-dimensional) system"),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_dimensions() {
        let e = SolverError::NotSquare { n_rows: 3, n_cols: 5 };
        assert!(e.to_string().contains("3x5"));
        let e = SolverError::RhsLength { expected: 10, got: 7 };
        assert!(e.to_string().contains('7') && e.to_string().contains("10"));
        let e = SolverError::PreconditionerDim { expected: 4, got: 9 };
        assert!(e.to_string().contains('9'));
        assert!(SolverError::EmptySystem.to_string().contains("empty"));
    }
}
