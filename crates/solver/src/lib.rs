//! # spcg-solver
//!
//! Conjugate-gradient solvers: the left-preconditioned PCG of the paper's
//! Algorithm 1 plus an unpreconditioned CG entry point, with residual
//! history, per-phase timings and breakdown detection.

#![warn(missing_docs)]

pub mod cg;
pub mod chebyshev;
pub mod config;
pub mod pcg;
pub mod status;
pub mod workspace;

pub use cg::cg;
pub use chebyshev::chebyshev;
pub use config::{SolverConfig, ToleranceMode};
pub use pcg::{pcg, pcg_in_place, pcg_iteration_flops, pcg_with_workspace};
pub use status::{PhaseTimings, SolveResult, StopReason};
pub use workspace::{SolveStats, SolveWorkspace};
