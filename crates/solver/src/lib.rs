//! # spcg-solver
//!
//! Conjugate-gradient solvers: the left-preconditioned PCG of the paper's
//! Algorithm 1 plus an unpreconditioned CG entry point, with residual
//! history, per-phase timings, typed input validation, and per-iteration
//! runtime guards that classify every breakdown into a [`BreakdownKind`].

#![warn(missing_docs)]

pub mod cg;
pub mod chebyshev;
pub mod config;
pub mod error;
pub mod fault;
pub mod pcg;
pub mod status;
pub mod workspace;

pub use cg::{cg, cg_probed};
pub use chebyshev::{chebyshev, chebyshev_probed};
pub use config::{SolverConfig, ToleranceMode};
pub use error::SolverError;
pub use fault::{FaultKind, SolveFault};
pub use pcg::{
    pcg, pcg_in_place, pcg_in_place_faulted, pcg_in_place_probed, pcg_in_place_warm_probed,
    pcg_iteration_flops, pcg_refined_in_place, pcg_refined_in_place_probed, pcg_with_workspace,
    pcg_with_workspace_faulted, pcg_with_workspace_probed, RefinedStats,
};
pub use status::{BreakdownKind, PhaseTimings, SolveResult, StopReason};
pub use workspace::{SolveStats, SolveWorkspace};
