//! Reusable solve-loop storage: every vector PCG touches, allocated once
//! and reused across solves (the "execute" half of the plan/execute split).

use crate::status::{PhaseTimings, StopReason};
use spcg_precond::Preconditioner;
use spcg_sparse::Scalar;

/// All hot-loop buffers of a PCG solve: iterate `x`, residual `r`,
/// preconditioned residual `z`, `w = A p`, search direction `p`, the
/// preconditioner's scratch (the triangular-solve intermediate for ILU
/// factors), and the residual-history buffer.
///
/// Construct once — sized for a matrix dimension and a preconditioner —
/// then hand to [`pcg_in_place`](crate::pcg::pcg_in_place) or
/// [`pcg_with_workspace`](crate::pcg::pcg_with_workspace) any number of
/// times. After the first solve warms the buffers, subsequent solves
/// perform no heap allocation inside the iteration loop.
#[derive(Debug, Clone)]
pub struct SolveWorkspace<T: Scalar> {
    pub(crate) x: Vec<T>,
    pub(crate) r: Vec<T>,
    pub(crate) z: Vec<T>,
    pub(crate) w: Vec<T>,
    pub(crate) p: Vec<T>,
    pub(crate) scratch: Vec<T>,
    /// Boundary staging buffer for callers that gather/scatter vectors
    /// around a solve (e.g. permuted-operator plans). Held here so the
    /// capacity survives across solves; borrowed out via
    /// [`take_staging`](SolveWorkspace::take_staging) because the solve
    /// itself holds `&mut self`.
    staging: Vec<T>,
    /// Reduced-precision staging for mixed-precision preconditioner
    /// application (`Preconditioner::apply_staged`): the demoted residual,
    /// the reduced-precision iterate, and the triangular intermediate live
    /// here. Empty (never allocated) for full-precision preconditioners.
    pub(crate) staging_lo: Vec<T::Lower>,
    /// Iterative-refinement accumulator (the running solution across
    /// refinement restarts). Borrowed out via
    /// [`take_refine`](SolveWorkspace::take_refine).
    refine_x: Vec<T>,
    /// Iterative-refinement exact-residual buffer (`r = b − A·x_acc`).
    refine_r: Vec<T>,
    pub(crate) history: Vec<f64>,
    /// Dimension of the most recent solve; buffers may be larger (they
    /// never shrink, so one workspace can serve systems of varying size).
    active: usize,
}

impl<T: Scalar> SolveWorkspace<T> {
    /// Workspace for an `n`-dimensional system whose preconditioner needs
    /// `scratch_len` elements of scratch.
    pub fn new(n: usize, scratch_len: usize) -> Self {
        Self {
            x: vec![T::ZERO; n],
            r: vec![T::ZERO; n],
            z: vec![T::ZERO; n],
            w: vec![T::ZERO; n],
            p: vec![T::ZERO; n],
            scratch: vec![T::ZERO; scratch_len],
            staging: Vec::new(),
            staging_lo: Vec::new(),
            refine_x: Vec::new(),
            refine_r: Vec::new(),
            history: Vec::new(),
            active: n,
        }
    }

    /// Workspace sized for `n` and the given preconditioner's scratch and
    /// staging requirements (the staging buffer stays empty for
    /// full-precision preconditioners, whose `staging_len` is 0).
    pub fn for_preconditioner<M: Preconditioner<T> + ?Sized>(n: usize, m: &M) -> Self {
        let mut ws = Self::new(n, m.scratch_len());
        ws.staging_lo.resize(m.staging_len(), <T::Lower as Scalar>::ZERO);
        ws
    }

    /// Dimension of the most recent (or upcoming) solve.
    pub fn n(&self) -> usize {
        self.active
    }

    /// The solution left by the most recent in-place solve.
    pub fn solution(&self) -> &[T] {
        &self.x[..self.active]
    }

    /// Residual history of the most recent solve (empty unless history
    /// recording was enabled in the solver config).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Mutable access to the active slice of the solution buffer, for
    /// callers that post-process the iterate of an in-place solve (e.g.
    /// scattering a permuted solution back to the caller's ordering).
    pub fn solution_mut(&mut self) -> &mut [T] {
        &mut self.x[..self.active]
    }

    /// Pre-sizes the staging buffer so the first
    /// [`take_staging`](SolveWorkspace::take_staging) of up to `n` elements
    /// allocates nothing.
    pub fn reserve_staging(&mut self, n: usize) {
        if self.staging.len() < n {
            self.staging.resize(n, T::ZERO);
        }
    }

    /// Moves the staging buffer out, sized to exactly `n` elements (its
    /// previous contents are unspecified). Once the buffer has grown to
    /// `n`, taking it is allocation-free. Return it with
    /// [`restore_staging`](SolveWorkspace::restore_staging) so the
    /// capacity is kept for the next solve; a caller that forgets only
    /// costs a re-allocation, never correctness.
    pub fn take_staging(&mut self, n: usize) -> Vec<T> {
        let mut v = std::mem::take(&mut self.staging);
        v.resize(n, T::ZERO);
        v
    }

    /// Returns a buffer obtained from
    /// [`take_staging`](SolveWorkspace::take_staging) (or any buffer whose
    /// capacity is worth keeping) to the workspace.
    pub fn restore_staging(&mut self, v: Vec<T>) {
        if v.capacity() > self.staging.capacity() {
            self.staging = v;
        }
    }

    /// Pre-sizes the reduced-precision staging buffer (the mixed-precision
    /// apply path of [`Preconditioner::apply_staged`]) so the first solve
    /// through a mixed preconditioner allocates nothing.
    pub fn reserve_staging_lo(&mut self, len: usize) {
        if self.staging_lo.len() < len {
            self.staging_lo.resize(len, <T::Lower as Scalar>::ZERO);
        }
    }

    /// Pre-sizes the iterative-refinement buffers so the first
    /// [`take_refine`](SolveWorkspace::take_refine) of up to `n` elements
    /// allocates nothing.
    pub fn reserve_refine(&mut self, n: usize) {
        if self.refine_x.len() < n {
            self.refine_x.resize(n, T::ZERO);
        }
        if self.refine_r.len() < n {
            self.refine_r.resize(n, T::ZERO);
        }
    }

    /// Moves the iterative-refinement pair (accumulator, exact residual)
    /// out, each sized to exactly `n` elements (previous contents
    /// unspecified). Allocation-free once the buffers have grown to `n`;
    /// return them with [`restore_refine`](SolveWorkspace::restore_refine).
    pub fn take_refine(&mut self, n: usize) -> (Vec<T>, Vec<T>) {
        let mut x = std::mem::take(&mut self.refine_x);
        let mut r = std::mem::take(&mut self.refine_r);
        x.resize(n, T::ZERO);
        r.resize(n, T::ZERO);
        (x, r)
    }

    /// Returns buffers obtained from
    /// [`take_refine`](SolveWorkspace::take_refine) to the workspace so
    /// their capacity survives to the next solve.
    pub fn restore_refine(&mut self, x: Vec<T>, r: Vec<T>) {
        if x.capacity() > self.refine_x.capacity() {
            self.refine_x = x;
        }
        if r.capacity() > self.refine_r.capacity() {
            self.refine_r = r;
        }
    }

    /// Sets the active dimension, growing buffers if the dimension, scratch
    /// or staging requirement, or history capacity exceeds what is
    /// allocated. Idempotent: once sized, repeated calls (and solves)
    /// allocate nothing.
    pub(crate) fn ensure(
        &mut self,
        n: usize,
        scratch_len: usize,
        staging_len: usize,
        history_cap: usize,
    ) {
        self.active = n;
        if self.x.len() < n {
            self.x.resize(n, T::ZERO);
            self.r.resize(n, T::ZERO);
            self.z.resize(n, T::ZERO);
            self.w.resize(n, T::ZERO);
            self.p.resize(n, T::ZERO);
        }
        if self.scratch.len() < scratch_len {
            self.scratch.resize(scratch_len, T::ZERO);
        }
        if self.staging_lo.len() < staging_len {
            self.staging_lo.resize(staging_len, <T::Lower as Scalar>::ZERO);
        }
        if self.history.capacity() < history_cap {
            self.history.reserve(history_cap - self.history.len());
        }
    }
}

/// Scalar outcome of an in-place solve: everything in
/// [`SolveResult`](crate::status::SolveResult) except the heap-allocated
/// iterate and history, which stay in the workspace. `Copy`, so returning
/// it allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final `‖r‖₂`.
    pub final_residual: f64,
    /// Stop condition.
    pub stop: StopReason,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl SolveStats {
    /// `true` when the run converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::IdentityPreconditioner;

    #[test]
    fn sizing_follows_preconditioner() {
        let m = IdentityPreconditioner::new(10);
        let ws = SolveWorkspace::<f64>::for_preconditioner(10, &m);
        assert_eq!(ws.n(), 10);
        assert_eq!(ws.scratch.len(), 0);
        let ws2 = SolveWorkspace::<f64>::new(6, 6);
        assert_eq!(ws2.scratch.len(), 6);
    }

    #[test]
    fn staging_round_trip_keeps_capacity() {
        let mut ws = SolveWorkspace::<f64>::new(4, 0);
        ws.reserve_staging(16);
        let buf = ws.take_staging(16);
        let cap = buf.capacity();
        assert_eq!(buf.len(), 16);
        ws.restore_staging(buf);
        // Smaller takes reuse the same allocation.
        let again = ws.take_staging(8);
        assert_eq!(again.len(), 8);
        assert_eq!(again.capacity(), cap);
        ws.restore_staging(again);
        // A throwaway restore never downgrades the kept capacity.
        ws.restore_staging(Vec::new());
        assert_eq!(ws.take_staging(16).capacity(), cap);
    }

    #[test]
    fn solution_mut_tracks_active_dimension() {
        let mut ws = SolveWorkspace::<f64>::new(6, 0);
        ws.solution_mut().fill(2.5);
        assert_eq!(ws.solution(), &[2.5; 6]);
        ws.ensure(3, 0, 0, 0);
        assert_eq!(ws.solution_mut().len(), 3);
    }

    #[test]
    fn ensure_grows_buffers_but_never_shrinks_them() {
        let mut ws = SolveWorkspace::<f64>::new(4, 0);
        ws.ensure(8, 8, 0, 16);
        assert_eq!(ws.n(), 8);
        assert_eq!(ws.scratch.len(), 8);
        assert!(ws.history.capacity() >= 16);
        // A smaller solve reuses the larger buffers; only the active
        // dimension shrinks.
        ws.ensure(2, 0, 0, 0);
        assert_eq!(ws.n(), 2);
        assert_eq!(ws.x.len(), 8);
        assert_eq!(ws.solution().len(), 2);
    }
}
