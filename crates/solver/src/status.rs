//! Solve outcomes, residual history and per-phase timing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Why a solve broke down, as classified by the runtime guards in the
/// iteration loop. The paper's evaluation only *excludes* NaN runs; a
/// production solver needs to know the cause to pick the right recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakdownKind {
    /// A NaN or Inf appeared in the residual or a scalar recurrence —
    /// usually a poisoned factor (zero pivot upstream) or overflow.
    Nan,
    /// `pᵀAp ≤ 0` or `zᵀr ≤ 0`: the operator or the preconditioner is not
    /// positive definite along the current direction.
    Indefinite,
    /// The residual stopped improving for a whole stagnation window —
    /// the preconditioner is too inaccurate to make progress at this
    /// tolerance.
    Stagnation,
    /// The residual grew past the configured divergence factor times its
    /// initial value.
    Divergence,
}

impl fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakdownKind::Nan => write!(f, "NaN/Inf in the iteration"),
            BreakdownKind::Indefinite => write!(f, "indefinite operator or preconditioner"),
            BreakdownKind::Stagnation => write!(f, "residual stagnated"),
            BreakdownKind::Divergence => write!(f, "residual diverged"),
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The residual dropped below the configured threshold.
    Converged,
    /// The iteration cap was reached first.
    MaxIterations,
    /// The iteration broke down; the payload classifies why (NaN,
    /// indefiniteness, stagnation, divergence). Matches — and refines —
    /// the paper's NaN-residual exclusion criterion.
    Breakdown(BreakdownKind),
}

impl StopReason {
    /// `true` for any breakdown, regardless of cause.
    pub fn is_breakdown(&self) -> bool {
        matches!(self, StopReason::Breakdown(_))
    }

    /// This stop condition in the probe layer's guard/outcome vocabulary,
    /// for recording into `spcg_probe` event streams.
    pub fn as_probe_stop(&self) -> spcg_probe::ProbeStop {
        use spcg_probe::ProbeStop;
        match self {
            StopReason::Converged => ProbeStop::Converged,
            StopReason::MaxIterations => ProbeStop::MaxIterations,
            StopReason::Breakdown(BreakdownKind::Nan) => ProbeStop::Nan,
            StopReason::Breakdown(BreakdownKind::Indefinite) => ProbeStop::Indefinite,
            StopReason::Breakdown(BreakdownKind::Stagnation) => ProbeStop::Stagnation,
            StopReason::Breakdown(BreakdownKind::Divergence) => ProbeStop::Divergence,
        }
    }

    /// The breakdown cause, when the solve broke down.
    pub fn breakdown_kind(&self) -> Option<BreakdownKind> {
        match self {
            StopReason::Breakdown(k) => Some(*k),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Converged => write!(f, "converged"),
            StopReason::MaxIterations => write!(f, "iteration cap reached"),
            StopReason::Breakdown(kind) => write!(f, "breakdown: {kind}"),
        }
    }
}

/// Wall-clock time spent per phase of a solve.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Time in SpMV (line 9 of Algorithm 1).
    pub spmv: Duration,
    /// Time applying the preconditioner (line 13).
    pub precond: Duration,
    /// Time in vector updates and dot products.
    pub blas: Duration,
    /// Total solve-loop time.
    pub total: Duration,
}

/// The result of a CG/PCG run.
#[derive(Debug, Clone)]
pub struct SolveResult<T> {
    /// Final iterate.
    pub x: Vec<T>,
    /// Iterations performed (0 if the initial guess already converged).
    pub iterations: usize,
    /// Final `‖r‖₂`.
    pub final_residual: f64,
    /// Stop condition.
    pub stop: StopReason,
    /// `‖r_k‖₂` per iteration (empty unless history was requested).
    pub residual_history: Vec<f64>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl<T> SolveResult<T> {
    /// `true` when the run converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }

    /// Mean wall-clock seconds per iteration of the solve loop.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.timings.total.as_secs_f64() / self.iterations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_accessors() {
        let r = SolveResult::<f64> {
            x: vec![],
            iterations: 4,
            final_residual: 1e-13,
            stop: StopReason::Converged,
            residual_history: vec![],
            timings: PhaseTimings { total: Duration::from_secs(2), ..Default::default() },
        };
        assert!(r.converged());
        assert!((r.seconds_per_iteration() - 0.5).abs() < 1e-12);
        let nr = SolveResult::<f64> {
            iterations: 0,
            stop: StopReason::Breakdown(BreakdownKind::Nan),
            ..r
        };
        assert!(!nr.converged());
        assert_eq!(nr.seconds_per_iteration(), 0.0);
    }

    #[test]
    fn probe_stop_mapping_is_total() {
        use spcg_probe::ProbeStop;
        assert_eq!(StopReason::Converged.as_probe_stop(), ProbeStop::Converged);
        assert_eq!(StopReason::MaxIterations.as_probe_stop(), ProbeStop::MaxIterations);
        for (kind, want) in [
            (BreakdownKind::Nan, ProbeStop::Nan),
            (BreakdownKind::Indefinite, ProbeStop::Indefinite),
            (BreakdownKind::Stagnation, ProbeStop::Stagnation),
            (BreakdownKind::Divergence, ProbeStop::Divergence),
        ] {
            assert_eq!(StopReason::Breakdown(kind).as_probe_stop(), want);
        }
    }

    #[test]
    fn breakdown_accessors_classify() {
        let s = StopReason::Breakdown(BreakdownKind::Indefinite);
        assert!(s.is_breakdown());
        assert_eq!(s.breakdown_kind(), Some(BreakdownKind::Indefinite));
        assert!(!StopReason::Converged.is_breakdown());
        assert_eq!(StopReason::MaxIterations.breakdown_kind(), None);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(StopReason::Converged.to_string(), "converged");
        let s = StopReason::Breakdown(BreakdownKind::Stagnation).to_string();
        assert!(s.contains("stagnated"), "{s}");
        for kind in [
            BreakdownKind::Nan,
            BreakdownKind::Indefinite,
            BreakdownKind::Stagnation,
            BreakdownKind::Divergence,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
