//! Solve outcomes, residual history and per-phase timing.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The residual dropped below the configured threshold.
    Converged,
    /// The iteration cap was reached first.
    MaxIterations,
    /// A NaN/Inf appeared or `pᵀAp ≤ 0` (matrix not SPD / preconditioner
    /// broke down). Matches the paper's NaN-residual exclusion criterion.
    Breakdown,
}

/// Wall-clock time spent per phase of a solve.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Time in SpMV (line 9 of Algorithm 1).
    pub spmv: Duration,
    /// Time applying the preconditioner (line 13).
    pub precond: Duration,
    /// Time in vector updates and dot products.
    pub blas: Duration,
    /// Total solve-loop time.
    pub total: Duration,
}

/// The result of a CG/PCG run.
#[derive(Debug, Clone)]
pub struct SolveResult<T> {
    /// Final iterate.
    pub x: Vec<T>,
    /// Iterations performed (0 if the initial guess already converged).
    pub iterations: usize,
    /// Final `‖r‖₂`.
    pub final_residual: f64,
    /// Stop condition.
    pub stop: StopReason,
    /// `‖r_k‖₂` per iteration (empty unless history was requested).
    pub residual_history: Vec<f64>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl<T> SolveResult<T> {
    /// `true` when the run converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }

    /// Mean wall-clock seconds per iteration of the solve loop.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.timings.total.as_secs_f64() / self.iterations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_accessors() {
        let r = SolveResult::<f64> {
            x: vec![],
            iterations: 4,
            final_residual: 1e-13,
            stop: StopReason::Converged,
            residual_history: vec![],
            timings: PhaseTimings { total: Duration::from_secs(2), ..Default::default() },
        };
        assert!(r.converged());
        assert!((r.seconds_per_iteration() - 0.5).abs() < 1e-12);
        let nr = SolveResult::<f64> { iterations: 0, stop: StopReason::Breakdown, ..r };
        assert!(!nr.converged());
        assert_eq!(nr.seconds_per_iteration(), 0.0);
    }
}
