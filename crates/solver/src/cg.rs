//! Plain (unpreconditioned) conjugate gradient — the `M = I` special case,
//! provided as a direct entry point and as the baseline in examples.

use crate::config::SolverConfig;
use crate::error::SolverError;
use crate::pcg::{pcg, pcg_with_workspace_probed};
use crate::status::SolveResult;
use crate::workspace::SolveWorkspace;
use spcg_precond::IdentityPreconditioner;
use spcg_probe::Probe;
use spcg_sparse::{CsrMatrix, Scalar};

/// Solves `A x = b` with unpreconditioned CG.
pub fn cg<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    config: &SolverConfig,
) -> Result<SolveResult<T>, SolverError> {
    let m = IdentityPreconditioner::new(a.n_rows());
    pcg(a, &m, b, config)
}

/// [`cg`] with an observability [`Probe`] receiving the solve-loop spans
/// and per-iteration events.
pub fn cg_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    b: &[T],
    config: &SolverConfig,
    probe: &mut P,
) -> Result<SolveResult<T>, SolverError> {
    let m = IdentityPreconditioner::new(a.n_rows());
    let mut ws = SolveWorkspace::for_preconditioner(a.n_rows(), &m);
    pcg_with_workspace_probed(a, &m, b, config, None, &mut ws, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_1d;
    use spcg_sparse::spmv::spmv_alloc;

    #[test]
    fn cg_solves_tridiagonal_exactly_in_n_steps() {
        // CG converges in at most n steps in exact arithmetic; the 1-D
        // Laplacian with n distinct eigenvalues takes close to n.
        let n = 24;
        let a = poisson_1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let res = cg(&a, &b, &SolverConfig::default().with_tol(1e-12)).unwrap();
        assert!(res.converged());
        assert!(res.iterations <= n + 1);
        let ax = spmv_alloc(&a, &res.x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn identity_system_converges_instantly() {
        let a = CsrMatrix::<f64>::identity(10);
        let b = vec![3.0; 10];
        let res = cg(&a, &b, &SolverConfig::default()).unwrap();
        assert!(res.converged());
        assert!(res.iterations <= 1);
        for v in &res.x {
            assert!((v - 3.0).abs() < 1e-10);
        }
    }
}
