//! Deterministic solve-loop fault injection for resilience testing.
//!
//! The guards in [`pcg_in_place_faulted`](crate::pcg::pcg_in_place_faulted)
//! are only trustworthy if tests can force each failure mode on demand.
//! [`SolveFault`] poisons the iteration at a chosen step, deterministically,
//! so a test can assert both that the guard fires and *how* the breakdown
//! is classified. Production callers simply pass `None` (or use the
//! fault-free entry points), which compiles to a single branch per
//! iteration.

/// What the injected fault does to the iteration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrites the first residual component with NaN, simulating a
    /// poisoned kernel result.
    Nan,
    /// Zeroes the preconditioned residual `z` (and its `rᵀz` product) —
    /// the way a reduced-precision preconditioner application collapses
    /// when its values underflow or flush to zero — so the indefiniteness
    /// guard `rᵀz ≤ 0` fires deterministically. This is the injected
    /// "f32 stall" the promote-precision fallback rung recovers from.
    StalledPrecond,
}

/// A deterministic fault injected into the PCG iteration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveFault {
    /// Iteration index (0-based) at which the fault fires.
    pub at_iteration: usize,
    /// What the fault corrupts.
    pub kind: FaultKind,
}

impl SolveFault {
    /// Overwrites the first residual component with NaN at the start of
    /// iteration `k`, simulating a poisoned kernel result.
    pub fn nan_at(k: usize) -> Self {
        Self { at_iteration: k, kind: FaultKind::Nan }
    }

    /// Collapses the preconditioned residual to zero at the start of
    /// iteration `k`, simulating a reduced-precision preconditioner apply
    /// whose output underflowed (the "f32 stall" failure mode).
    pub fn stall_at(k: usize) -> Self {
        Self { at_iteration: k, kind: FaultKind::StalledPrecond }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_records_the_iteration() {
        assert_eq!(SolveFault::nan_at(7).at_iteration, 7);
        assert_eq!(SolveFault::nan_at(7).kind, FaultKind::Nan);
        assert_eq!(SolveFault::stall_at(2).at_iteration, 2);
        assert_eq!(SolveFault::stall_at(2).kind, FaultKind::StalledPrecond);
    }
}
