//! Deterministic solve-loop fault injection for resilience testing.
//!
//! The guards in [`pcg_in_place_faulted`](crate::pcg::pcg_in_place_faulted)
//! are only trustworthy if tests can force each failure mode on demand.
//! [`SolveFault`] poisons the iteration at a chosen step, deterministically,
//! so a test can assert both that the guard fires and *how* the breakdown
//! is classified. Production callers simply pass `None` (or use the
//! fault-free entry points), which compiles to a single branch per
//! iteration.

/// A deterministic fault injected into the PCG iteration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveFault {
    /// Iteration index (0-based) at which the fault fires.
    pub at_iteration: usize,
}

impl SolveFault {
    /// Overwrites the first residual component with NaN at the start of
    /// iteration `k`, simulating a poisoned kernel result.
    pub fn nan_at(k: usize) -> Self {
        Self { at_iteration: k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_records_the_iteration() {
        assert_eq!(SolveFault::nan_at(7).at_iteration, 7);
    }
}
