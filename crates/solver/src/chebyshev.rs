//! Chebyshev semi-iteration — the reduction-free Krylov alternative.
//!
//! Unlike CG, Chebyshev iteration needs *no inner products*, only a bound
//! `[lambda_min, lambda_max]` on the (preconditioned) spectrum. On GPUs
//! this removes the global synchronizations that dot products cost — the
//! same synchronization pressure the paper attacks in the triangular
//! solves — at the price of needing spectral bounds and converging slower
//! than CG when the bounds are loose.

use crate::config::SolverConfig;
use crate::status::{BreakdownKind, PhaseTimings, SolveResult, StopReason};
use spcg_precond::Preconditioner;
use spcg_probe::{IterationEvent, NoProbe, Probe, ProbeStop, Span};
use spcg_sparse::blas::{has_bad, norm2};
use spcg_sparse::spmv::spmv;
use spcg_sparse::{CsrMatrix, Scalar};
use std::time::Instant;

/// Solves `A x = b` by preconditioned Chebyshev iteration given bounds
/// `lambda_min <= lambda <= lambda_max` on the spectrum of `M⁻¹A`.
pub fn chebyshev<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    lambda_min: f64,
    lambda_max: f64,
    config: &SolverConfig,
) -> SolveResult<T> {
    chebyshev_probed(a, m, b, lambda_min, lambda_max, config, &mut NoProbe)
}

/// [`chebyshev`] with an observability [`Probe`]: one [`Span::SolveLoop`]
/// around the recurrence, [`Span::PrecondApply`]/[`Span::Spmv`] per
/// iteration, and one [`IterationEvent`] per step (guard classification on
/// the stopping step). With [`NoProbe`] this monomorphizes to exactly
/// [`chebyshev`].
pub fn chebyshev_probed<T: Scalar, M: Preconditioner<T> + ?Sized, P: Probe>(
    a: &CsrMatrix<T>,
    m: &M,
    b: &[T],
    lambda_min: f64,
    lambda_max: f64,
    config: &SolverConfig,
    probe: &mut P,
) -> SolveResult<T> {
    assert!(a.is_square(), "Chebyshev requires a square matrix");
    assert!(lambda_max > lambda_min && lambda_min > 0.0, "need 0 < lambda_min < lambda_max");
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");

    let mut timings = PhaseTimings::default();
    let start = Instant::now();
    probe.span_begin(Span::SolveLoop);

    let theta = (lambda_max + lambda_min) / 2.0;
    let delta = (lambda_max - lambda_min) / 2.0;

    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let mut z = vec![T::ZERO; n];
    let mut p = vec![T::ZERO; n];
    let mut ap = vec![T::ZERO; n];

    let b_norm = norm2(b).to_f64();
    let threshold = config.threshold(b_norm);
    let mut history = Vec::new();
    let mut alpha = 0.0f64;
    let mut iterations = 0usize;
    let mut stop = StopReason::MaxIterations;

    for k in 0..config.max_iters {
        let r_norm = norm2(&r).to_f64();
        if config.record_history {
            history.push(r_norm);
        }
        if !r_norm.is_finite() || has_bad(&r) {
            stop = StopReason::Breakdown(BreakdownKind::Nan);
            probe.iteration(IterationEvent {
                k,
                residual: r_norm,
                alpha: 0.0,
                beta: 0.0,
                guard: ProbeStop::Nan,
            });
            break;
        }
        if r_norm < threshold {
            stop = StopReason::Converged;
            probe.iteration(IterationEvent {
                k,
                residual: r_norm,
                alpha: 0.0,
                beta: 0.0,
                guard: ProbeStop::Converged,
            });
            break;
        }

        let t = Instant::now();
        probe.span_begin(Span::PrecondApply);
        m.apply(&r, &mut z);
        probe.span_end(Span::PrecondApply);
        timings.precond += t.elapsed();

        // Chebyshev recurrence (Saad, "Iterative Methods", Alg. 12.1).
        let beta = match k {
            0 => 0.0,
            1 => 0.5 * (delta * alpha) * (delta * alpha),
            _ => (delta * alpha / 2.0) * (delta * alpha / 2.0),
        };
        alpha = match k {
            0 => 1.0 / theta,
            _ => 1.0 / (theta - beta / alpha),
        };
        let bt = T::from_f64(beta);
        let at = T::from_f64(alpha);
        for i in 0..n {
            p[i] = z[i] + bt * p[i];
            x[i] += at * p[i];
        }

        let t = Instant::now();
        probe.span_begin(Span::Spmv);
        spmv(a, &p, &mut ap);
        probe.span_end(Span::Spmv);
        timings.spmv += t.elapsed();
        for i in 0..n {
            r[i] -= at * ap[i];
        }
        probe.iteration(IterationEvent {
            k,
            residual: r_norm,
            alpha,
            beta,
            guard: ProbeStop::Running,
        });
        iterations += 1;
    }
    probe.span_end(Span::SolveLoop);

    let final_residual = norm2(&r).to_f64();
    if stop == StopReason::MaxIterations && final_residual < threshold {
        stop = StopReason::Converged;
    }
    timings.total = start.elapsed();
    SolveResult { x, iterations, final_residual, stop, residual_history: history, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use spcg_precond::{IdentityPreconditioner, JacobiPreconditioner};
    use spcg_sparse::generators::{poisson_1d, poisson_2d};
    use spcg_sparse::spmv::spmv_alloc;

    #[test]
    fn solves_with_exact_bounds() {
        let n = 24;
        let a = poisson_1d(n);
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let lmin = 2.0 - 2.0 * h.cos();
        let lmax = 2.0 - 2.0 * (n as f64 * h).cos();
        let b = vec![1.0f64; n];
        let m = IdentityPreconditioner::new(n);
        let cfg = SolverConfig::default().with_tol(1e-9).with_max_iters(2000);
        let r = chebyshev(&a, &m, &b, lmin, lmax, &cfg);
        assert_eq!(r.stop, StopReason::Converged, "resid {}", r.final_residual);
        let ax = spmv_alloc(&a, &r.x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_needs_fewer_iterations_than_chebyshev() {
        // CG is optimal in the A-norm; Chebyshev with the same information
        // can only match it asymptotically.
        let a = poisson_2d(12, 12);
        let b = vec![1.0f64; 144];
        let cfg = SolverConfig::default().with_tol(1e-8).with_max_iters(3000);
        let cgr = cg(&a, &b, &cfg).unwrap();
        let m = IdentityPreconditioner::new(144);
        let chr = chebyshev(&a, &m, &b, 0.05, 8.0, &cfg);
        assert!(cgr.converged() && chr.converged());
        assert!(cgr.iterations <= chr.iterations);
    }

    #[test]
    fn jacobi_preconditioned_chebyshev() {
        let a = poisson_2d(10, 10);
        let b = vec![1.0f64; 100];
        let m = JacobiPreconditioner::new(&a).unwrap();
        // Spectrum of D^-1 A for 2-D Poisson lies in (0, 2).
        let cfg = SolverConfig::default().with_tol(1e-8).with_max_iters(3000);
        let r = chebyshev(&a, &m, &b, 0.01, 2.0, &cfg);
        assert!(r.converged(), "stop {:?} resid {}", r.stop, r.final_residual);
    }

    #[test]
    fn bad_bounds_diverge_or_stall() {
        let a = poisson_2d(8, 8);
        let b = vec![1.0f64; 64];
        let m = IdentityPreconditioner::new(64);
        // lambda_max far below the true spectrum: the iteration must not
        // converge (and may blow up -> Breakdown) within a few steps.
        let cfg = SolverConfig::default().with_tol(1e-10).with_max_iters(50);
        let r = chebyshev(&a, &m, &b, 0.5, 1.0, &cfg);
        assert_ne!(r.stop, StopReason::Converged);
    }

    #[test]
    #[should_panic(expected = "lambda_min")]
    fn rejects_invalid_bounds() {
        let a = poisson_1d(4);
        let m = IdentityPreconditioner::new(4);
        let _ = chebyshev(&a, &m, &[1.0; 4], 2.0, 1.0, &SolverConfig::default());
    }
}
