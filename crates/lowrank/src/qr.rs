//! Householder QR with column pivoting — the rank-revealing factorization
//! the HSS probe uses to decide whether a block is compressible.

use spcg_sparse::DenseMatrix;

/// Result of a pivoted QR factorization: the diagonal of `R` in pivot
/// order, which decays with the singular values (up to modest factors).
#[derive(Debug, Clone)]
pub struct PivotedQr {
    /// `|R[k][k]|` for k = 0..min(m,n), non-increasing by construction.
    pub r_diag: Vec<f64>,
    /// Column permutation applied (pivot order).
    pub perm: Vec<usize>,
}

/// Computes the column-pivoted QR of `a` (only the information needed for
/// rank estimation is retained).
pub fn pivoted_qr(a: &DenseMatrix<f64>) -> PivotedQr {
    let m = a.n_rows();
    let n = a.n_cols();
    let kmax = m.min(n);
    // Work on a column-major copy for cache-friendly column ops.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| (0..m).map(|i| a.get(i, j)).collect()).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut col_norms: Vec<f64> = cols.iter().map(|c| c.iter().map(|v| v * v).sum()).collect();
    let mut r_diag = Vec::with_capacity(kmax);

    for k in 0..kmax {
        // Pivot: bring the largest remaining column to position k.
        let (piv, _) = col_norms[k..]
            .iter()
            .enumerate()
            .fold((0usize, -1.0f64), |best, (i, &v)| if v > best.1 { (i, v) } else { best });
        let piv = k + piv;
        cols.swap(k, piv);
        col_norms.swap(k, piv);
        perm.swap(k, piv);

        // Householder vector for column k below row k.
        let alpha: f64 = cols[k][k..].iter().map(|v| v * v).sum::<f64>().sqrt();
        if alpha == 0.0 {
            r_diag.push(0.0);
            continue;
        }
        let sign = if cols[k][k] >= 0.0 { 1.0 } else { -1.0 };
        let mut v: Vec<f64> = cols[k][k..].to_vec();
        v[0] += sign * alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Apply H = I - 2 v vᵀ / (vᵀv) to remaining columns.
            for col in cols.iter_mut().skip(k + 1) {
                let dot: f64 = v.iter().zip(&col[k..]).map(|(a, b)| a * b).sum();
                let f = 2.0 * dot / vnorm2;
                for (vi, ci) in v.iter().zip(col[k..].iter_mut()) {
                    *ci -= f * vi;
                }
            }
        }
        r_diag.push(alpha);
        // Downdate column norms (recompute exactly — blocks are small).
        for (j, col) in cols.iter().enumerate().skip(k + 1) {
            col_norms[j] = col[k + 1..].iter().map(|x| x * x).sum();
        }
    }
    PivotedQr { r_diag, perm }
}

impl PivotedQr {
    /// Numerical rank at a tolerance relative to the largest `R` diagonal.
    pub fn rank_rel(&self, rel_tol: f64) -> usize {
        let r0 = self.r_diag.first().copied().unwrap_or(0.0);
        if r0 == 0.0 {
            return 0;
        }
        self.r_diag.iter().take_while(|&&d| d > rel_tol * r0).count()
    }

    /// Numerical rank at an absolute tolerance.
    pub fn rank_abs(&self, abs_tol: f64) -> usize {
        self.r_diag.iter().take_while(|&&d| d > abs_tol).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outer(u: &[f64], v: &[f64]) -> DenseMatrix<f64> {
        let mut m = DenseMatrix::zeros(u.len(), v.len());
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                m.set(i, j, ui * vj);
            }
        }
        m
    }

    #[test]
    fn rank_one_matrix() {
        let m = outer(&[1.0, 2.0, 3.0, 4.0], &[2.0, -1.0, 0.5]);
        let qr = pivoted_qr(&m);
        assert_eq!(qr.rank_rel(1e-10), 1);
        assert!(qr.r_diag[1].abs() < 1e-12);
    }

    #[test]
    fn rank_two_matrix() {
        let a = outer(&[1.0, 0.0, 1.0, 2.0], &[1.0, 1.0, 0.0]);
        let b = outer(&[0.0, 1.0, -1.0, 0.5], &[0.0, 2.0, 1.0]);
        let mut m = DenseMatrix::zeros(4, 3);
        for i in 0..4 {
            for j in 0..3 {
                m.set(i, j, a.get(i, j) + b.get(i, j));
            }
        }
        assert_eq!(pivoted_qr(&m).rank_rel(1e-10), 2);
    }

    #[test]
    fn full_rank_identity() {
        let qr = pivoted_qr(&DenseMatrix::identity(5));
        assert_eq!(qr.rank_rel(1e-10), 5);
        for &d in &qr.r_diag {
            assert!((d - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn r_diag_is_non_increasing() {
        // Deterministic pseudo-random full-rank matrix.
        let mut m = DenseMatrix::zeros(8, 8);
        let mut s = 1u64;
        for i in 0..8 {
            for j in 0..8 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.set(i, j, (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0);
            }
        }
        let qr = pivoted_qr(&m);
        for w in qr.r_diag.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "r_diag not decaying: {:?}", qr.r_diag);
        }
        assert_eq!(qr.rank_rel(1e-12), 8);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let qr = pivoted_qr(&DenseMatrix::zeros(4, 4));
        assert_eq!(qr.rank_rel(1e-10), 0);
        assert_eq!(qr.rank_abs(1e-30), 0);
    }

    #[test]
    fn rectangular_blocks() {
        let m = outer(&[1.0, 2.0], &[1.0, 0.0, 2.0, 3.0]);
        let qr = pivoted_qr(&m);
        assert_eq!(qr.r_diag.len(), 2);
        assert_eq!(qr.rank_rel(1e-10), 1);
    }

    #[test]
    fn abs_rank_threshold() {
        let mut m = DenseMatrix::zeros(3, 3);
        m.set(0, 0, 10.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 1e-8);
        let qr = pivoted_qr(&m);
        assert_eq!(qr.rank_abs(1e-4), 2);
        assert_eq!(qr.rank_abs(1e-12), 3);
    }
}
