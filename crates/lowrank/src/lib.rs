//! # spcg-lowrank
//!
//! Rank-revealing low-rank compression probe over incomplete-factor blocks
//! — the §4.6 study ("Low-rank Approximation Methods") substituting for
//! STRUMPACK's HSS machinery: pivoted-QR numerical rank of off-diagonal
//! factor blocks under STRUMPACK-style leaf-size / tolerance /
//! minimum-separator knobs.

#![warn(missing_docs)]

pub mod hss;
pub mod qr;

pub use hss::{probe_factor, HssProbeParams, HssProbeReport};
pub use qr::{pivoted_qr, PivotedQr};
