//! HSS-qualification probe over incomplete-factor blocks — the §4.6
//! substitute for STRUMPACK.
//!
//! STRUMPACK compresses off-diagonal blocks of frontal matrices when they
//! are (a) large enough (`min_separator`) and (b) numerically low-rank at
//! the compression tolerance. The paper found that ILU(0)/ILU(K) factors
//! rarely qualify: their dense sub-blocks are small and high-rank. This
//! module measures exactly that qualification rate on our factors.

use crate::qr::pivoted_qr;
use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, DenseMatrix, Scalar};

/// Compression parameters mirroring STRUMPACK's knobs (§4.6: "compression
/// leaf size, relative and absolute compression tolerances, and minimum
/// separator size").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HssProbeParams {
    /// Side length of the index blocks examined.
    pub leaf_size: usize,
    /// Relative rank tolerance (singular values below `rel_tol * σ_max`
    /// are treated as zero).
    pub rel_tol: f64,
    /// Absolute rank tolerance.
    pub abs_tol: f64,
    /// Minimum block dimension for compression to be worthwhile.
    pub min_separator: usize,
    /// A block "compresses" when rank ≤ `max_rank_fraction · leaf_size`.
    pub max_rank_fraction: f64,
    /// Minimum fill density (`nnz / area`) for a block to be a candidate:
    /// HSS operates on *dense* frontal blocks, and a nearly-empty sparse
    /// block is not worth forming densely however low its rank.
    pub min_density: f64,
}

impl Default for HssProbeParams {
    fn default() -> Self {
        Self {
            leaf_size: 64,
            rel_tol: 1e-4,
            abs_tol: 1e-12,
            min_separator: 32,
            max_rank_fraction: 0.5,
            min_density: 0.3,
        }
    }
}

/// Outcome of probing one factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HssProbeReport {
    /// Off-diagonal blocks examined.
    pub blocks_examined: usize,
    /// Blocks that met the size threshold (candidates).
    pub blocks_candidates: usize,
    /// Candidates that were numerically low-rank (compressible).
    pub blocks_compressible: usize,
    /// Stored entries inside compressible blocks.
    pub nnz_compressible: usize,
    /// Total stored entries examined.
    pub nnz_examined: usize,
}

impl HssProbeReport {
    /// `true` when HSS compression would trigger at all for this factor.
    pub fn triggers(&self) -> bool {
        self.blocks_compressible > 0
    }

    /// Fraction of candidate blocks that compressed, in percent.
    pub fn compression_rate_pct(&self) -> f64 {
        if self.blocks_candidates == 0 {
            0.0
        } else {
            100.0 * self.blocks_compressible as f64 / self.blocks_candidates as f64
        }
    }
}

/// Extracts the dense sub-block `rows × cols` of `m`.
fn extract_block<T: Scalar>(
    m: &CsrMatrix<T>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> (DenseMatrix<f64>, usize) {
    let mut d = DenseMatrix::zeros(rows.len(), cols.len());
    let mut nnz = 0;
    for i in rows.clone() {
        for (&c, &v) in m.row_cols(i).iter().zip(m.row_values(i)) {
            if cols.contains(&c) {
                d.set(i - rows.start, c - cols.start, v.to_f64());
                nnz += 1;
            }
        }
    }
    (d, nnz)
}

/// Probes every off-diagonal leaf-block pair of a (triangular) factor for
/// HSS compressibility.
///
/// Blocks are contiguous index ranges of size `leaf_size` (the implicit
/// binary partition STRUMPACK uses on a reordered matrix); only nonempty
/// sub-diagonal block pairs are examined.
pub fn probe_factor<T: Scalar>(factor: &CsrMatrix<T>, params: &HssProbeParams) -> HssProbeReport {
    let n = factor.n_rows();
    let ls = params.leaf_size.max(2);
    let n_blocks = n.div_ceil(ls);
    let mut report = HssProbeReport {
        blocks_examined: 0,
        blocks_candidates: 0,
        blocks_compressible: 0,
        nnz_compressible: 0,
        nnz_examined: 0,
    };
    for bi in 0..n_blocks {
        let rows = bi * ls..((bi + 1) * ls).min(n);
        for bj in 0..bi {
            let cols = bj * ls..((bj + 1) * ls).min(n);
            let (block, nnz) = extract_block(factor, rows.clone(), cols.clone());
            if nnz == 0 {
                continue;
            }
            report.blocks_examined += 1;
            report.nnz_examined += nnz;
            let min_dim = rows.len().min(cols.len());
            if min_dim < params.min_separator {
                continue;
            }
            let density = nnz as f64 / (rows.len() * cols.len()) as f64;
            if density < params.min_density {
                continue;
            }
            report.blocks_candidates += 1;
            let qr = pivoted_qr(&block);
            let rank = qr.rank_rel(params.rel_tol).min(qr.rank_abs(params.abs_tol));
            if (rank as f64) <= params.max_rank_fraction * min_dim as f64 {
                report.blocks_compressible += 1;
                report.nnz_compressible += nnz;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{ilu0, iluk, ExecutionStrategy};
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn ilu0_factors_rarely_qualify() {
        // The paper's §4.6 finding: incomplete factors' off-diagonal blocks
        // are too sparse/small to trigger HSS compression at default
        // parameters.
        let a = poisson_2d(40, 40);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let rep = probe_factor(f.l(), &HssProbeParams::default());
        assert!(rep.blocks_examined > 0);
        // Default min_separator filters out nearly everything: candidates
        // are a small subset and few (often zero) compress at rank/2.
        assert!(
            rep.blocks_candidates <= rep.blocks_examined,
            "candidates {} > examined {}",
            rep.blocks_candidates,
            rep.blocks_examined
        );
    }

    #[test]
    fn tiny_min_separator_increases_candidates() {
        let a = poisson_2d(32, 32);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let strict = probe_factor(f.l(), &HssProbeParams::default());
        let lax = probe_factor(
            f.l(),
            &HssProbeParams { min_separator: 2, min_density: 0.0, ..Default::default() },
        );
        assert!(lax.blocks_candidates >= strict.blocks_candidates);
    }

    #[test]
    fn iluk_fill_adds_blocks() {
        let a = poisson_2d(32, 32);
        let f0 = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let f2 = iluk(&a, 2, ExecutionStrategy::Sequential).unwrap();
        let p = HssProbeParams { min_separator: 2, min_density: 0.0, ..Default::default() };
        let r0 = probe_factor(f0.l(), &p);
        let r2 = probe_factor(f2.l(), &p);
        assert!(r2.nnz_examined >= r0.nnz_examined);
    }

    #[test]
    fn sparse_blocks_are_low_rank_by_construction() {
        // A factor whose off-diagonal blocks hold a single entry is
        // trivially rank-1 and compresses once candidates are admitted.
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(128, 128);
        for i in 0..128 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(100, 3, 0.5).unwrap();
        let m = coo.to_csr();
        let p = HssProbeParams {
            leaf_size: 64,
            min_separator: 4,
            min_density: 0.0,
            ..Default::default()
        };
        let rep = probe_factor(&m, &p);
        assert_eq!(rep.blocks_examined, 1);
        assert_eq!(rep.blocks_compressible, 1);
        assert!(rep.triggers());
        assert_eq!(rep.compression_rate_pct(), 100.0);
    }

    #[test]
    fn empty_report_metrics() {
        let m = spcg_sparse::CsrMatrix::<f64>::identity(16);
        let rep = probe_factor(&m, &HssProbeParams::default());
        assert_eq!(rep.blocks_examined, 0);
        assert!(!rep.triggers());
        assert_eq!(rep.compression_rate_pct(), 0.0);
    }
}
