//! Phase-table rendering shared by measured ([`RecordingProbe`]) and
//! simulated (gpusim bridge) traces.
//!
//! [`RecordingProbe`]: crate::RecordingProbe

use crate::{Counter, RunTrace, Span, TraceEvent};

/// Aggregated timing for one span kind across a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase.
    pub span: Span,
    /// Number of occurrences.
    pub calls: usize,
    /// Total time including child spans, in nanoseconds.
    pub inclusive_ns: u64,
    /// Total time excluding child spans, in nanoseconds.
    pub exclusive_ns: u64,
}

/// Aggregate a trace's span events into per-phase rows, ordered by first
/// appearance. Unbalanced span events are skipped rather than reported.
pub fn phase_rows(trace: &RunTrace) -> Vec<PhaseRow> {
    let mut rows: Vec<PhaseRow> = Vec::new();
    // (span, begin_ns, child_ns)
    let mut stack: Vec<(Span, u64, u64)> = Vec::new();
    for ev in &trace.events {
        match ev {
            TraceEvent::SpanBegin { span, t_ns } => {
                if !rows.iter().any(|r| r.span == *span) {
                    rows.push(PhaseRow { span: *span, calls: 0, inclusive_ns: 0, exclusive_ns: 0 });
                }
                stack.push((*span, *t_ns, 0));
            }
            TraceEvent::SpanEnd { span, t_ns } => {
                let Some((open, begin, child_ns)) = stack.pop() else { continue };
                if open != *span {
                    stack.push((open, begin, child_ns));
                    continue;
                }
                let dur = t_ns.saturating_sub(begin);
                let row = rows.iter_mut().find(|r| r.span == *span).expect("row exists");
                row.calls += 1;
                row.inclusive_ns += dur;
                row.exclusive_ns += dur.saturating_sub(child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += dur;
                }
            }
            _ => {}
        }
    }
    rows
}

/// Format a nanosecond duration with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Render the human-readable phase table for a trace: one row per span kind
/// (calls, inclusive/exclusive time, share of wall time attributed
/// exclusively to that phase), followed by counter totals. The same
/// renderer serves measured and gpusim-simulated traces.
pub fn render_phase_table(trace: &RunTrace) -> String {
    let rows = phase_rows(trace);
    let wall = match (trace.events.first(), trace.events.last()) {
        (Some(first), Some(last)) => last.t_ns().saturating_sub(first.t_ns()),
        _ => 0,
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>7} {:>12} {:>12} {:>8}\n",
        "phase", "calls", "inclusive", "exclusive", "% wall"
    ));
    for row in &rows {
        let pct = if wall == 0 { 0.0 } else { 100.0 * row.exclusive_ns as f64 / wall as f64 };
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>7.1}%\n",
            row.span.label(),
            row.calls,
            fmt_ns(row.inclusive_ns),
            fmt_ns(row.exclusive_ns),
            pct
        ));
    }
    let mut counters: Vec<(Counter, u64)> = Vec::new();
    for ev in &trace.events {
        if let TraceEvent::Count { counter, value, .. } = ev {
            match counters.iter_mut().find(|(c, _)| c == counter) {
                Some((_, total)) => *total += value,
                None => counters.push((*counter, *value)),
            }
        }
    }
    if !counters.is_empty() {
        out.push_str("counters\n");
        for (counter, total) in &counters {
            out.push_str(&format!("  {:<26} {:>20}\n", counter.label(), total));
        }
    }
    let iters = trace.iterations();
    if iters > 0 {
        out.push_str(&format!("  {:<26} {:>20}\n", "iterations", iters));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> RunTrace {
        let mut t = RunTrace::new();
        t.push(TraceEvent::SpanBegin { span: Span::SolveLoop, t_ns: 0 });
        t.push(TraceEvent::SpanBegin { span: Span::Spmv, t_ns: 100 });
        t.push(TraceEvent::SpanEnd { span: Span::Spmv, t_ns: 400 });
        t.push(TraceEvent::SpanBegin { span: Span::Spmv, t_ns: 500 });
        t.push(TraceEvent::SpanEnd { span: Span::Spmv, t_ns: 700 });
        t.push(TraceEvent::Count { counter: Counter::SimFlops, value: 9, t_ns: 800 });
        t.push(TraceEvent::SpanEnd { span: Span::SolveLoop, t_ns: 1000 });
        t
    }

    #[test]
    fn rows_split_inclusive_and_exclusive() {
        let rows = phase_rows(&nested());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].span, Span::SolveLoop);
        assert_eq!(rows[0].calls, 1);
        assert_eq!(rows[0].inclusive_ns, 1000);
        assert_eq!(rows[0].exclusive_ns, 500);
        assert_eq!(rows[1].span, Span::Spmv);
        assert_eq!(rows[1].calls, 2);
        assert_eq!(rows[1].inclusive_ns, 500);
        assert_eq!(rows[1].exclusive_ns, 500);
    }

    #[test]
    fn table_renders_rows_and_counters() {
        let table = render_phase_table(&nested());
        assert!(table.contains("solve.loop"));
        assert!(table.contains("solve.spmv"));
        assert!(table.contains("sim.flops"));
        assert!(table.contains("50.0%"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(25_000), "25.00 us");
        assert_eq!(fmt_ns(25_000_000), "25.00 ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.00 s");
    }
}
