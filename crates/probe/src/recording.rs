//! In-memory structured trace recording: [`RecordingProbe`] and [`RunTrace`].

use crate::{
    clean_f64, AdmissionEvent, Counter, IterationEvent, Probe, ProbeStop, RefineEvent, RungEvent,
    Span,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timestamped entry in a [`RunTrace`]. Timestamps are nanoseconds
/// relative to the recording probe's creation (or synthetic time for
/// gpusim-bridged traces), monotonically non-decreasing in event order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A span opened.
    SpanBegin {
        /// The phase that opened.
        span: Span,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// The innermost open span of this kind closed.
    SpanEnd {
        /// The phase that closed.
        span: Span,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// A typed counter event.
    Count {
        /// Which counter.
        counter: Counter,
        /// Amount added by this event.
        value: u64,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// A solver iteration event.
    Iteration {
        /// The iteration payload.
        event: IterationEvent,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// A recovery-ladder rung event.
    Rung {
        /// The rung payload.
        event: RungEvent,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// An iterative-refinement restart in a mixed-precision solve.
    Refine {
        /// The refinement payload.
        event: RefineEvent,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
    /// A serve-layer admission decision (admit / downgrade / shed).
    Admission {
        /// The admission payload.
        event: AdmissionEvent,
        /// Timestamp in nanoseconds since trace start.
        t_ns: u64,
    },
}

impl TraceEvent {
    /// Timestamp of this event in nanoseconds since trace start.
    pub fn t_ns(&self) -> u64 {
        match self {
            TraceEvent::SpanBegin { t_ns, .. }
            | TraceEvent::SpanEnd { t_ns, .. }
            | TraceEvent::Count { t_ns, .. }
            | TraceEvent::Iteration { t_ns, .. }
            | TraceEvent::Rung { t_ns, .. }
            | TraceEvent::Refine { t_ns, .. }
            | TraceEvent::Admission { t_ns, .. } => *t_ns,
        }
    }
}

/// A matched span occurrence extracted from a [`RunTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which phase.
    pub span: Span,
    /// Begin timestamp (ns since trace start).
    pub start_ns: u64,
    /// End timestamp (ns since trace start).
    pub end_ns: u64,
    /// Nesting depth at begin time (0 = top level).
    pub depth: usize,
}

impl SpanRecord {
    /// Inclusive duration of this occurrence in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A structured, serializable run trace: the ordered event stream captured
/// by a [`RecordingProbe`] (or synthesized by the gpusim bridge).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Ordered, timestamped events.
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// An empty trace (useful for synthetic construction via [`Self::push`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a raw event. Synthetic producers (the gpusim bridge) use this
    /// to build traces with model-derived timestamps.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Extract matched span occurrences in begin order.
    ///
    /// Returns an error if an end event closes a span kind that is not the
    /// innermost open one, if an end arrives with no open span, or if spans
    /// remain open at the end of the trace.
    pub fn span_records(&self) -> Result<Vec<SpanRecord>, String> {
        let mut stack: Vec<(Span, u64, usize)> = Vec::new();
        let mut out: Vec<SpanRecord> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::SpanBegin { span, t_ns } => {
                    let idx = out.len();
                    out.push(SpanRecord {
                        span: *span,
                        start_ns: *t_ns,
                        end_ns: *t_ns,
                        depth: stack.len(),
                    });
                    stack.push((*span, *t_ns, idx));
                }
                TraceEvent::SpanEnd { span, t_ns } => {
                    let Some((open, start, idx)) = stack.pop() else {
                        return Err(format!("span_end({span}) with no open span"));
                    };
                    if open != *span {
                        return Err(format!("span_end({span}) closes open span {open}"));
                    }
                    if *t_ns < start {
                        return Err(format!("span {span} ends before it begins"));
                    }
                    out[idx].end_ns = *t_ns;
                }
                _ => {}
            }
        }
        if let Some((open, _, _)) = stack.last() {
            return Err(format!("span {open} never closed"));
        }
        Ok(out)
    }

    /// Validate span pairing/nesting and timestamp monotonicity.
    pub fn validate_nesting(&self) -> Result<(), String> {
        let mut prev = 0u64;
        for ev in &self.events {
            let t = ev.t_ns();
            if t < prev {
                return Err(format!("timestamps regress: {t} after {prev}"));
            }
            prev = t;
        }
        self.span_records().map(|_| ())
    }

    /// Fraction of total trace wall time accounted to top-level (depth 0)
    /// spans. `1.0` for an empty or instantaneous trace.
    pub fn coverage(&self) -> f64 {
        let Ok(records) = self.span_records() else {
            return 0.0;
        };
        let (Some(first), Some(last)) = (self.events.first(), self.events.last()) else {
            return 1.0;
        };
        let wall = last.t_ns().saturating_sub(first.t_ns());
        if wall == 0 {
            return 1.0;
        }
        let covered: u64 =
            records.iter().filter(|r| r.depth == 0).map(SpanRecord::duration_ns).sum();
        covered as f64 / wall as f64
    }

    /// Number of healthy (guard == `Running`) solver iterations recorded.
    /// Matches `SolveResult::iterations` for a solve recorded end to end.
    pub fn iterations(&self) -> usize {
        self.events
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    TraceEvent::Iteration { event, .. } if event.guard == ProbeStop::Running
                )
            })
            .count()
    }

    /// Sum of all events for one counter.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Count { counter: c, value, .. } if *c == counter => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Human-readable phase table (see [`crate::render_phase_table`]).
    pub fn phase_table(&self) -> String {
        crate::render_phase_table(self)
    }
}

/// A [`Probe`] sink that appends every event to an in-memory [`RunTrace`],
/// timestamped against a monotonic clock captured at construction.
#[derive(Debug)]
pub struct RecordingProbe {
    epoch: Instant,
    trace: RunTrace,
}

impl RecordingProbe {
    /// Start recording; timestamps are relative to this call.
    pub fn new() -> Self {
        Self { epoch: Instant::now(), trace: RunTrace::new() }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Consume the probe and return the recorded trace.
    pub fn finish(self) -> RunTrace {
        self.trace
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for RecordingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for RecordingProbe {
    fn span_begin(&mut self, span: Span) {
        let t_ns = self.now_ns();
        self.trace.push(TraceEvent::SpanBegin { span, t_ns });
    }

    fn span_end(&mut self, span: Span) {
        let t_ns = self.now_ns();
        self.trace.push(TraceEvent::SpanEnd { span, t_ns });
    }

    fn counter(&mut self, counter: Counter, value: u64) {
        let t_ns = self.now_ns();
        self.trace.push(TraceEvent::Count { counter, value, t_ns });
    }

    fn iteration(&mut self, event: IterationEvent) {
        let t_ns = self.now_ns();
        let event = IterationEvent {
            residual: clean_f64(event.residual),
            alpha: clean_f64(event.alpha),
            beta: clean_f64(event.beta),
            ..event
        };
        self.trace.push(TraceEvent::Iteration { event, t_ns });
    }

    fn rung(&mut self, event: RungEvent) {
        let t_ns = self.now_ns();
        let event =
            RungEvent { ratio: clean_f64(event.ratio), shift: clean_f64(event.shift), ..event };
        self.trace.push(TraceEvent::Rung { event, t_ns });
    }

    fn refine_restart(&mut self, event: &RefineEvent) {
        let t_ns = self.now_ns();
        let event = RefineEvent { residual: clean_f64(event.residual), ..*event };
        self.trace.push(TraceEvent::Refine { event, t_ns });
    }

    fn admission(&mut self, event: AdmissionEvent) {
        let t_ns = self.now_ns();
        let event = AdmissionEvent { est_cost_us: clean_f64(event.est_cost_us), ..event };
        self.trace.push(TraceEvent::Admission { event, t_ns });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RungKind;

    fn synthetic() -> RunTrace {
        let mut t = RunTrace::new();
        t.push(TraceEvent::SpanBegin { span: Span::SolveLoop, t_ns: 0 });
        t.push(TraceEvent::SpanBegin { span: Span::Spmv, t_ns: 10 });
        t.push(TraceEvent::Count { counter: Counter::SimBytes, value: 64, t_ns: 15 });
        t.push(TraceEvent::SpanEnd { span: Span::Spmv, t_ns: 40 });
        t.push(TraceEvent::Iteration {
            event: IterationEvent {
                k: 0,
                residual: 1.0,
                alpha: 0.5,
                beta: 0.2,
                guard: ProbeStop::Running,
            },
            t_ns: 45,
        });
        t.push(TraceEvent::Iteration {
            event: IterationEvent {
                k: 1,
                residual: 1e-9,
                alpha: 0.0,
                beta: 0.0,
                guard: ProbeStop::Converged,
            },
            t_ns: 50,
        });
        t.push(TraceEvent::SpanEnd { span: Span::SolveLoop, t_ns: 100 });
        t
    }

    #[test]
    fn span_records_pair_and_nest() {
        let t = synthetic();
        let records = t.span_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].span, Span::SolveLoop);
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[0].duration_ns(), 100);
        assert_eq!(records[1].span, Span::Spmv);
        assert_eq!(records[1].depth, 1);
        assert_eq!(records[1].duration_ns(), 30);
        t.validate_nesting().unwrap();
    }

    #[test]
    fn unbalanced_traces_are_rejected() {
        let mut t = RunTrace::new();
        t.push(TraceEvent::SpanBegin { span: Span::Spmv, t_ns: 0 });
        assert!(t.validate_nesting().is_err());

        let mut t = RunTrace::new();
        t.push(TraceEvent::SpanEnd { span: Span::Spmv, t_ns: 0 });
        assert!(t.validate_nesting().is_err());

        let mut t = RunTrace::new();
        t.push(TraceEvent::SpanBegin { span: Span::Spmv, t_ns: 0 });
        t.push(TraceEvent::SpanEnd { span: Span::Blas, t_ns: 1 });
        assert!(t.validate_nesting().is_err());
    }

    #[test]
    fn coverage_counts_top_level_spans() {
        let t = synthetic();
        assert!((t.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(RunTrace::new().coverage(), 1.0);
    }

    #[test]
    fn iteration_and_counter_accounting() {
        let t = synthetic();
        assert_eq!(t.iterations(), 1);
        assert_eq!(t.counter_total(Counter::SimBytes), 64);
        assert_eq!(t.counter_total(Counter::Levels), 0);
    }

    #[test]
    fn run_trace_round_trips_through_json() {
        let t = synthetic();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: RunTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn recording_probe_orders_and_sanitizes() {
        let mut p = RecordingProbe::new();
        p.span_begin(Span::SolveLoop);
        p.iteration(IterationEvent {
            k: 0,
            residual: f64::NAN,
            alpha: f64::INFINITY,
            beta: 0.5,
            guard: ProbeStop::Nan,
        });
        p.rung(RungEvent {
            attempt: 1,
            rung: RungKind::Shifted,
            ratio: 0.0,
            shift: f64::NAN,
            outcome: ProbeStop::Converged,
        });
        p.span_end(Span::SolveLoop);
        let t = p.finish();
        t.validate_nesting().unwrap();
        match &t.events[1] {
            TraceEvent::Iteration { event, .. } => {
                assert_eq!(event.residual, 0.0);
                assert_eq!(event.alpha, 0.0);
                assert_eq!(event.beta, 0.5);
                assert_eq!(event.guard, ProbeStop::Nan);
            }
            other => panic!("expected iteration event, got {other:?}"),
        }
        match &t.events[2] {
            TraceEvent::Rung { event, .. } => {
                assert_eq!(event.shift, 0.0);
                assert_eq!(event.rung, RungKind::Shifted);
            }
            other => panic!("expected rung event, got {other:?}"),
        }
    }
}
