//! Streaming per-phase latency aggregation: [`HistogramProbe`].

use crate::{fmt_ns, AdmissionEvent, Counter, IterationEvent, Probe, RungEvent, Span};
use std::time::Instant;

/// Latency statistics for one span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Which phase.
    pub span: Span,
    /// Number of completed occurrences.
    pub count: usize,
    /// Sum of inclusive durations, in nanoseconds.
    pub total_ns: u64,
    /// Median inclusive duration (nearest-rank), in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile inclusive duration (nearest-rank), in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile inclusive duration (nearest-rank), in nanoseconds.
    pub p99_ns: u64,
    /// Maximum inclusive duration, in nanoseconds.
    pub max_ns: u64,
}

/// A [`Probe`] sink that keeps per-phase duration samples and counter totals
/// instead of a full event stream — bounded memory per span kind occurrence,
/// p50/p95/max on demand.
#[derive(Debug)]
pub struct HistogramProbe {
    epoch: Instant,
    open: Vec<(Span, u64)>,
    samples: Vec<(Span, Vec<u64>)>,
    counters: Vec<(Counter, u64)>,
    quantiles: Vec<f64>,
    iterations: usize,
    rungs: usize,
    admissions: usize,
}

impl HistogramProbe {
    /// Start aggregating; durations are measured against a monotonic clock.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            open: Vec::new(),
            samples: Vec::new(),
            counters: Vec::new(),
            quantiles: vec![0.50, 0.95, 0.99],
            iterations: 0,
            rungs: 0,
            admissions: 0,
        }
    }

    /// Override the quantile list reported by [`Self::quantiles_for`].
    /// Values outside `(0, 1]` are dropped; the list is sorted ascending.
    pub fn with_quantiles(mut self, quantiles: &[f64]) -> Self {
        let mut qs: Vec<f64> =
            quantiles.iter().copied().filter(|q| *q > 0.0 && *q <= 1.0).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.quantiles = qs;
        self
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record an externally measured duration against a span kind, as if a
    /// `span_begin`/`span_end` pair of that length had been observed. Lets
    /// load generators and discrete-event simulations feed latencies into
    /// the same quantile machinery the live probe uses.
    pub fn record_duration_ns(&mut self, span: Span, duration_ns: u64) {
        match self.samples.iter_mut().find(|(s, _)| *s == span) {
            Some((_, durations)) => durations.push(duration_ns),
            None => self.samples.push((span, vec![duration_ns])),
        }
    }

    /// Per-phase statistics, ordered by first appearance.
    pub fn stats(&self) -> Vec<PhaseStats> {
        self.samples
            .iter()
            .map(|(span, durations)| {
                let mut sorted = durations.clone();
                sorted.sort_unstable();
                PhaseStats {
                    span: *span,
                    count: sorted.len(),
                    total_ns: sorted.iter().sum(),
                    p50_ns: percentile(&sorted, 0.50),
                    p95_ns: percentile(&sorted, 0.95),
                    p99_ns: percentile(&sorted, 0.99),
                    max_ns: sorted.last().copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Nearest-rank quantile of one span's samples; `None` if the span has
    /// no completed occurrences.
    pub fn quantile(&self, span: Span, q: f64) -> Option<u64> {
        let (_, durations) = self.samples.iter().find(|(s, _)| *s == span)?;
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        Some(percentile(&sorted, q))
    }

    /// The configured quantile list (see [`Self::with_quantiles`]) evaluated
    /// against one span's samples. Empty if the span has no occurrences.
    pub fn quantiles_for(&self, span: Span) -> Vec<(f64, u64)> {
        let Some((_, durations)) = self.samples.iter().find(|(s, _)| *s == span) else {
            return Vec::new();
        };
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        self.quantiles.iter().map(|&q| (q, percentile(&sorted, q))).collect()
    }

    /// Accumulated total for one counter.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.counters.iter().find(|(c, _)| *c == counter).map(|(_, total)| *total).unwrap_or(0)
    }

    /// Number of iteration events observed (healthy and guard-exit).
    pub fn iteration_events(&self) -> usize {
        self.iterations
    }

    /// Number of recovery-ladder rung events observed.
    pub fn rung_events(&self) -> usize {
        self.rungs
    }

    /// Number of admission-decision events observed.
    pub fn admission_events(&self) -> usize {
        self.admissions
    }

    /// Human-readable latency table: per-phase count/total/p50/p95/max plus
    /// counter totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total", "p50", "p95", "p99", "max"
        ));
        for s in self.stats() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                s.span.label(),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.p99_ns),
                fmt_ns(s.max_ns)
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (counter, total) in &self.counters {
                out.push_str(&format!("  {:<26} {:>20}\n", counter.label(), total));
            }
        }
        out
    }
}

impl Default for HistogramProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Probe for HistogramProbe {
    fn span_begin(&mut self, span: Span) {
        let t = self.now_ns();
        self.open.push((span, t));
    }

    fn span_end(&mut self, span: Span) {
        let t = self.now_ns();
        // Close the innermost open occurrence of this span kind; ignore a
        // mismatched end rather than corrupting other phases.
        let Some(pos) = self.open.iter().rposition(|(s, _)| *s == span) else {
            return;
        };
        let (_, begin) = self.open.remove(pos);
        let dur = t.saturating_sub(begin);
        match self.samples.iter_mut().find(|(s, _)| *s == span) {
            Some((_, durations)) => durations.push(dur),
            None => self.samples.push((span, vec![dur])),
        }
    }

    fn counter(&mut self, counter: Counter, value: u64) {
        match self.counters.iter_mut().find(|(c, _)| *c == counter) {
            Some((_, total)) => *total += value,
            None => self.counters.push((counter, value)),
        }
    }

    fn iteration(&mut self, _event: IterationEvent) {
        self.iterations += 1;
    }

    fn rung(&mut self, _event: RungEvent) {
        self.rungs += 1;
    }

    fn admission(&mut self, _event: AdmissionEvent) {
        self.admissions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.50), 50);
        assert_eq!(percentile(&s, 0.95), 95);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn quantiles_pin_known_distributions() {
        // Uniform 1..=1000: nearest-rank q-quantile is exactly ceil(1000q).
        let mut p = HistogramProbe::new();
        for v in 1..=1000u64 {
            p.record_duration_ns(Span::ServeRequest, v);
        }
        assert_eq!(p.quantile(Span::ServeRequest, 0.50), Some(500));
        assert_eq!(p.quantile(Span::ServeRequest, 0.95), Some(950));
        assert_eq!(p.quantile(Span::ServeRequest, 0.99), Some(990));
        assert_eq!(p.quantile(Span::ServeRequest, 1.0), Some(1000));
        assert_eq!(p.quantile(Span::ServeBatch, 0.5), None, "no samples for that span");

        // Bimodal: 99 fast samples at 1, one slow at 1_000_000. p50/p95 sit
        // in the fast mode; p99 must not — that is the whole point of p99.
        let mut p = HistogramProbe::new();
        for _ in 0..99 {
            p.record_duration_ns(Span::ServeRequest, 1);
        }
        p.record_duration_ns(Span::ServeRequest, 1_000_000);
        let s = &p.stats()[0];
        assert_eq!((s.p50_ns, s.p95_ns), (1, 1));
        assert_eq!(s.p99_ns, 1, "rank 99 of 100 is still the fast mode");
        assert_eq!(s.max_ns, 1_000_000);
        // With 2% slow samples in 10_000, p99 lands on the slow mode
        // (rank 9900 falls past the 9800 fast samples).
        let mut p = HistogramProbe::new();
        for _ in 0..9_800 {
            p.record_duration_ns(Span::ServeRequest, 1);
        }
        for _ in 0..200 {
            p.record_duration_ns(Span::ServeRequest, 1_000_000);
        }
        assert_eq!(p.stats()[0].p99_ns, 1_000_000);
    }

    #[test]
    fn configurable_quantile_list() {
        let mut p = HistogramProbe::new().with_quantiles(&[0.9, 0.5, 0.999, 2.0, -0.1]);
        for v in 1..=1000u64 {
            p.record_duration_ns(Span::ServeRequest, v);
        }
        // Invalid entries dropped, rest sorted ascending.
        assert_eq!(p.quantiles_for(Span::ServeRequest), vec![(0.5, 500), (0.9, 900), (0.999, 999)]);
        assert!(p.quantiles_for(Span::ServeBatch).is_empty());
    }

    #[test]
    fn recorded_durations_merge_with_measured_spans() {
        let mut p = HistogramProbe::new();
        p.span_begin(Span::Spmv);
        p.span_end(Span::Spmv);
        p.record_duration_ns(Span::Spmv, 42);
        let s = &p.stats()[0];
        assert_eq!(s.count, 2);
        assert!(s.total_ns >= 42);
    }

    #[test]
    fn spans_aggregate_per_phase() {
        let mut p = HistogramProbe::new();
        for _ in 0..3 {
            p.span_begin(Span::Spmv);
            p.span_end(Span::Spmv);
        }
        p.span_begin(Span::SolveLoop);
        p.span_end(Span::SolveLoop);
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        let spmv = stats.iter().find(|s| s.span == Span::Spmv).unwrap();
        assert_eq!(spmv.count, 3);
        assert!(spmv.max_ns >= spmv.p50_ns);
        assert!(spmv.total_ns >= spmv.max_ns);
    }

    #[test]
    fn nested_same_span_closes_innermost() {
        let mut p = HistogramProbe::new();
        p.span_begin(Span::Blas);
        p.span_begin(Span::Blas);
        p.span_end(Span::Blas);
        p.span_end(Span::Blas);
        let stats = p.stats();
        assert_eq!(stats[0].count, 2);
        assert!(p.open.is_empty());
    }

    #[test]
    fn counters_and_events_accumulate() {
        let mut p = HistogramProbe::new();
        p.counter(Counter::Levels, 4);
        p.counter(Counter::Levels, 2);
        p.counter(Counter::Syncs, 1);
        p.iteration(IterationEvent {
            k: 0,
            residual: 1.0,
            alpha: 0.1,
            beta: 0.2,
            guard: crate::ProbeStop::Running,
        });
        assert_eq!(p.counter_total(Counter::Levels), 6);
        assert_eq!(p.counter_total(Counter::Syncs), 1);
        assert_eq!(p.counter_total(Counter::SimBytes), 0);
        assert_eq!(p.iteration_events(), 1);
        let table = p.render();
        assert!(table.contains("levels"));
    }

    #[test]
    fn mismatched_end_is_ignored() {
        let mut p = HistogramProbe::new();
        p.span_end(Span::Spmv);
        assert!(p.stats().is_empty());
    }
}
