//! Streaming per-phase latency aggregation: [`HistogramProbe`].

use crate::{fmt_ns, Counter, IterationEvent, Probe, RungEvent, Span};
use std::time::Instant;

/// Latency statistics for one span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Which phase.
    pub span: Span,
    /// Number of completed occurrences.
    pub count: usize,
    /// Sum of inclusive durations, in nanoseconds.
    pub total_ns: u64,
    /// Median inclusive duration (nearest-rank), in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile inclusive duration (nearest-rank), in nanoseconds.
    pub p95_ns: u64,
    /// Maximum inclusive duration, in nanoseconds.
    pub max_ns: u64,
}

/// A [`Probe`] sink that keeps per-phase duration samples and counter totals
/// instead of a full event stream — bounded memory per span kind occurrence,
/// p50/p95/max on demand.
#[derive(Debug)]
pub struct HistogramProbe {
    epoch: Instant,
    open: Vec<(Span, u64)>,
    samples: Vec<(Span, Vec<u64>)>,
    counters: Vec<(Counter, u64)>,
    iterations: usize,
    rungs: usize,
}

impl HistogramProbe {
    /// Start aggregating; durations are measured against a monotonic clock.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            open: Vec::new(),
            samples: Vec::new(),
            counters: Vec::new(),
            iterations: 0,
            rungs: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Per-phase statistics, ordered by first appearance.
    pub fn stats(&self) -> Vec<PhaseStats> {
        self.samples
            .iter()
            .map(|(span, durations)| {
                let mut sorted = durations.clone();
                sorted.sort_unstable();
                PhaseStats {
                    span: *span,
                    count: sorted.len(),
                    total_ns: sorted.iter().sum(),
                    p50_ns: percentile(&sorted, 0.50),
                    p95_ns: percentile(&sorted, 0.95),
                    max_ns: sorted.last().copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Accumulated total for one counter.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.counters.iter().find(|(c, _)| *c == counter).map(|(_, total)| *total).unwrap_or(0)
    }

    /// Number of iteration events observed (healthy and guard-exit).
    pub fn iteration_events(&self) -> usize {
        self.iterations
    }

    /// Number of recovery-ladder rung events observed.
    pub fn rung_events(&self) -> usize {
        self.rungs
    }

    /// Human-readable latency table: per-phase count/total/p50/p95/max plus
    /// counter totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total", "p50", "p95", "max"
        ));
        for s in self.stats() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                s.span.label(),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.max_ns)
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (counter, total) in &self.counters {
                out.push_str(&format!("  {:<26} {:>20}\n", counter.label(), total));
            }
        }
        out
    }
}

impl Default for HistogramProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Probe for HistogramProbe {
    fn span_begin(&mut self, span: Span) {
        let t = self.now_ns();
        self.open.push((span, t));
    }

    fn span_end(&mut self, span: Span) {
        let t = self.now_ns();
        // Close the innermost open occurrence of this span kind; ignore a
        // mismatched end rather than corrupting other phases.
        let Some(pos) = self.open.iter().rposition(|(s, _)| *s == span) else {
            return;
        };
        let (_, begin) = self.open.remove(pos);
        let dur = t.saturating_sub(begin);
        match self.samples.iter_mut().find(|(s, _)| *s == span) {
            Some((_, durations)) => durations.push(dur),
            None => self.samples.push((span, vec![dur])),
        }
    }

    fn counter(&mut self, counter: Counter, value: u64) {
        match self.counters.iter_mut().find(|(c, _)| *c == counter) {
            Some((_, total)) => *total += value,
            None => self.counters.push((counter, value)),
        }
    }

    fn iteration(&mut self, _event: IterationEvent) {
        self.iterations += 1;
    }

    fn rung(&mut self, _event: RungEvent) {
        self.rungs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.50), 50);
        assert_eq!(percentile(&s, 0.95), 95);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn spans_aggregate_per_phase() {
        let mut p = HistogramProbe::new();
        for _ in 0..3 {
            p.span_begin(Span::Spmv);
            p.span_end(Span::Spmv);
        }
        p.span_begin(Span::SolveLoop);
        p.span_end(Span::SolveLoop);
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        let spmv = stats.iter().find(|s| s.span == Span::Spmv).unwrap();
        assert_eq!(spmv.count, 3);
        assert!(spmv.max_ns >= spmv.p50_ns);
        assert!(spmv.total_ns >= spmv.max_ns);
    }

    #[test]
    fn nested_same_span_closes_innermost() {
        let mut p = HistogramProbe::new();
        p.span_begin(Span::Blas);
        p.span_begin(Span::Blas);
        p.span_end(Span::Blas);
        p.span_end(Span::Blas);
        let stats = p.stats();
        assert_eq!(stats[0].count, 2);
        assert!(p.open.is_empty());
    }

    #[test]
    fn counters_and_events_accumulate() {
        let mut p = HistogramProbe::new();
        p.counter(Counter::Levels, 4);
        p.counter(Counter::Levels, 2);
        p.counter(Counter::Syncs, 1);
        p.iteration(IterationEvent {
            k: 0,
            residual: 1.0,
            alpha: 0.1,
            beta: 0.2,
            guard: crate::ProbeStop::Running,
        });
        assert_eq!(p.counter_total(Counter::Levels), 6);
        assert_eq!(p.counter_total(Counter::Syncs), 1);
        assert_eq!(p.counter_total(Counter::SimBytes), 0);
        assert_eq!(p.iteration_events(), 1);
        let table = p.render();
        assert!(table.contains("levels"));
    }

    #[test]
    fn mismatched_end_is_ignored() {
        let mut p = HistogramProbe::new();
        p.span_end(Span::Spmv);
        assert!(p.stats().is_empty());
    }
}
