//! Zero-cost observability layer for the SPCG pipeline.
//!
//! The pipeline crates (`spcg-solver`, `spcg-precond`, `spcg-wavefront`,
//! `spcg-core`, `spcg-gpusim`) thread a generic [`Probe`] through their hot
//! paths. A probe receives:
//!
//! - **spans** ([`Span`]) — begin/end pairs bracketing pipeline phases
//!   (plan build, sparsification, factorization, level-schedule build, the
//!   PCG loop, per-apply triangular sweeps, …). Sinks take their own
//!   monotonic timestamps, so a disabled probe pays for *nothing*, not even
//!   a clock read;
//! - **counters** ([`Counter`]) — typed integer events (wavefront level
//!   widths, synchronization counts, factorization tallies, simulated
//!   bytes/FLOPs/launches);
//! - **iteration events** ([`IterationEvent`]) — per-PCG-iteration residual,
//!   `alpha`, `beta`, and the breakdown-guard classification;
//! - **rung events** ([`RungEvent`]) — recovery-ladder attempt transitions.
//!
//! The default sink [`NoProbe`] implements every hook as an empty `#[inline]`
//! body, so `pcg(…)` and friends monomorphize to exactly the un-instrumented
//! code: the counting-allocator zero-alloc test and the bitwise-identity
//! property tests in `spcg-core` run against the probed implementation and
//! must keep passing unchanged.
//!
//! Shipped sinks:
//!
//! - [`RecordingProbe`] — appends every event to an in-memory [`RunTrace`]
//!   (serde-serializable; `spcg --trace out.json` dumps one);
//! - [`HistogramProbe`] — streaming per-phase latency aggregation with
//!   p50/p95/max ([`PhaseStats`]);
//! - `spcg_gpusim::simulated_solve_trace` — builds a *synthetic* [`RunTrace`]
//!   from the analytic `KernelCost` model so simulated and measured runs
//!   render through the same phase-table readout ([`render_phase_table`]).

#![warn(missing_docs)]

mod histogram;
mod recording;
mod report;

pub use histogram::{HistogramProbe, PhaseStats};
pub use recording::{RecordingProbe, RunTrace, SpanRecord, TraceEvent};
pub use report::{fmt_ns, phase_rows, render_phase_table, PhaseRow};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named pipeline phase bracketed by [`Probe::span_begin`] /
/// [`Probe::span_end`].
///
/// Spans nest: a probe sees `PlanBuild { Sparsify { CandidateEval… },
/// Factorize, LevelBuild }` during plan construction and
/// `SolveLoop { Spmv, PrecondApply { TriangularLower, TriangularUpper },
/// Blas }` during a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Span {
    /// Whole `SpcgPlan::build` (sparsify + factorize + level build).
    PlanBuild,
    /// Ordering selection: candidate permutations evaluated and applied.
    Reorder,
    /// Algorithm 2 wavefront-aware sparsification (all candidates).
    Sparsify,
    /// One Algorithm 2 candidate evaluation (sparsify + indicator + levels).
    CandidateEval,
    /// Numeric factorization (ILU(0)/ILU(K)/IC(0) value sweep).
    Factorize,
    /// Level-schedule (wavefront) construction for the triangular factors.
    LevelBuild,
    /// One shifted-factorization attempt on `A + alpha*I`.
    ShiftAttempt,
    /// One recovery-ladder rung (rebuild + solve attempt).
    LadderAttempt,
    /// The whole Krylov iteration loop (PCG/CG/Chebyshev).
    SolveLoop,
    /// One sparse matrix-vector product inside the loop.
    Spmv,
    /// One preconditioner application (`M^{-1} r`).
    PrecondApply,
    /// Vector (BLAS-1) work inside the loop: dots, axpys, updates.
    Blas,
    /// Lower-triangular sweep of a preconditioner application.
    TriangularLower,
    /// Upper-triangular sweep of a preconditioner application.
    TriangularUpper,
    /// One solve request handled by the serve layer (lookup + solve).
    ServeRequest,
    /// One coalesced same-fingerprint batch executed by a serve worker.
    ServeBatch,
    /// Value-only plan refresh (`SpcgPlan::refresh_values`): numeric
    /// refactorization reusing the recorded sparsify split, permutation,
    /// and level schedules.
    PlanRefresh,
    /// Approximate-inverse construction (FSAI/SPAI/Jacobi): the per-row
    /// least-squares / dense-solve pass that replaces `Factorize` +
    /// `LevelBuild` for level-free plans.
    PlanAinv,
}

impl Span {
    /// Short stable label used by the phase-table renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Span::PlanBuild => "plan.build",
            Span::Reorder => "plan.reorder",
            Span::Sparsify => "plan.sparsify",
            Span::CandidateEval => "plan.sparsify.candidate",
            Span::Factorize => "plan.factorize",
            Span::LevelBuild => "plan.level_build",
            Span::ShiftAttempt => "plan.shift_attempt",
            Span::LadderAttempt => "recover.ladder_attempt",
            Span::SolveLoop => "solve.loop",
            Span::Spmv => "solve.spmv",
            Span::PrecondApply => "solve.precond",
            Span::Blas => "solve.blas",
            Span::TriangularLower => "solve.tri_lower",
            Span::TriangularUpper => "solve.tri_upper",
            Span::ServeRequest => "serve.request",
            Span::ServeBatch => "serve.batch",
            Span::PlanRefresh => "plan.refresh",
            Span::PlanAinv => "plan.ainv",
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed integer event emitted via [`Probe::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// Number of wavefront levels in a schedule.
    Levels,
    /// Rows executed in one wavefront level (one event per level).
    LevelRows,
    /// Synchronization events per triangular sweep: level barriers under
    /// the level-scheduled executor, block releases under the
    /// dependency-block executor.
    Syncs,
    /// Dependency blocks released by the counter-release executor (one
    /// atomic countdown per block instead of a global barrier).
    ExecBlocks,
    /// Completed numeric factorizations.
    Factorizations,
    /// Shifted-factorization attempts consumed.
    ShiftAttempts,
    /// Algorithm 2 sparsification candidates evaluated.
    CandidatesEvaluated,
    /// Candidate orderings evaluated by the reorder selection pass.
    ReorderCandidates,
    /// Triangular-solve levels of the metric matrix under natural ordering.
    ReorderLevelsBefore,
    /// Triangular-solve levels under the ordering the selection chose.
    ReorderLevelsAfter,
    /// Simulated DRAM traffic in bytes (gpusim bridge).
    SimBytes,
    /// Simulated floating-point operations (gpusim bridge).
    SimFlops,
    /// Simulated kernel launches (gpusim bridge).
    SimLaunches,
    /// Plan-cache lookups that found a ready plan (serve layer).
    ServeCacheHit,
    /// Plan-cache lookups that had to build a plan (serve layer).
    ServeCacheMiss,
    /// Plans evicted from the cache by capacity or byte pressure.
    ServeCacheEviction,
    /// Estimated bytes currently resident in the plan cache.
    ServeCacheBytes,
    /// Coalesced batches executed by serve workers.
    ServeBatches,
    /// Right-hand sides that rode in a coalesced batch.
    ServeBatchedRhs,
    /// Requests rejected by queue backpressure (`try_submit`).
    ServeRejected,
    /// Reduced-precision preconditioner applications executed by a
    /// mixed-precision solve (one per PCG apply).
    PrecisionMixedApplies,
    /// Iterative-refinement restarts triggered by a stalled
    /// reduced-precision recurrence.
    PrecisionRefineRestarts,
    /// Factor-storage bytes saved by demoting to reduced precision.
    PrecisionBytesSaved,
    /// Requests admitted at full quality by the admission controller.
    ServeAdmitted,
    /// Requests admitted at a downgraded quality tier.
    ServeDowngraded,
    /// Requests shed (rejected before any work) by the admission controller.
    ServeShed,
    /// Circuit-breaker transitions into the open (quarantined) state.
    ServeBreakerOpened,
    /// Circuit-breaker transitions into half-open (probe) state.
    ServeBreakerHalfOpen,
    /// Circuit-breaker transitions back to closed (healthy) state.
    ServeBreakerClosed,
    /// Requests rejected because their fingerprint is quarantined.
    ServeBreakerRejected,
    /// Value-only refreshes that had to fall back to a full re-plan
    /// because the τ indicator drifted past the staleness threshold.
    PlanRefreshFallback,
    /// Sequence sessions opened on the serve layer.
    ServeSessionOpened,
    /// Sequence steps served through an open session.
    ServeSessionStep,
    /// Session steps that refreshed the plan's values in place (as opposed
    /// to reusing it verbatim or rebuilding from scratch).
    ServeSessionRefresh,
    /// Queued requests cancelled by their ticket before a worker picked
    /// them up.
    ServeCancelled,
    /// Resolved preconditioner kind of a built plan (the
    /// `spcg_core::PrecondKind` tag: 1 = sparsified ILU, 2 = FSAI,
    /// 3 = SPAI, 4 = Jacobi). Emitted once per plan build / refresh.
    PrecondKind,
    /// Stored entries in a constructed approximate inverse (FSAI counts
    /// `G` and `Gᵀ`; SPAI counts `M`).
    AinvNnz,
    /// Per-row least-squares systems solved while constructing an
    /// approximate inverse (one per matrix row for FSAI/SPAI).
    SpaiRows,
    /// Dense normal-equation entries gathered across all per-row SPAI/FSAI
    /// least-squares solves (the setup-cost analogue of factorization fill).
    SpaiGathered,
}

impl Counter {
    /// Short stable label used by the phase-table renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Counter::Levels => "levels",
            Counter::LevelRows => "level_rows",
            Counter::Syncs => "syncs",
            Counter::ExecBlocks => "exec.blocks",
            Counter::Factorizations => "factorizations",
            Counter::ShiftAttempts => "shift_attempts",
            Counter::CandidatesEvaluated => "candidates_evaluated",
            Counter::ReorderCandidates => "reorder.candidates",
            Counter::ReorderLevelsBefore => "reorder.levels_before",
            Counter::ReorderLevelsAfter => "reorder.levels_after",
            Counter::SimBytes => "sim.bytes",
            Counter::SimFlops => "sim.flops",
            Counter::SimLaunches => "sim.launches",
            Counter::ServeCacheHit => "serve.cache.hit",
            Counter::ServeCacheMiss => "serve.cache.miss",
            Counter::ServeCacheEviction => "serve.cache.eviction",
            Counter::ServeCacheBytes => "serve.cache.bytes",
            Counter::ServeBatches => "serve.batch.count",
            Counter::ServeBatchedRhs => "serve.batch.rhs",
            Counter::ServeRejected => "serve.queue.rejected",
            Counter::PrecisionMixedApplies => "precision.mixed_applies",
            Counter::PrecisionRefineRestarts => "precision.refine_restarts",
            Counter::PrecisionBytesSaved => "precision.bytes_saved",
            Counter::ServeAdmitted => "serve.admission.admitted",
            Counter::ServeDowngraded => "serve.admission.downgraded",
            Counter::ServeShed => "serve.admission.shed",
            Counter::ServeBreakerOpened => "serve.breaker.open",
            Counter::ServeBreakerHalfOpen => "serve.breaker.half_open",
            Counter::ServeBreakerClosed => "serve.breaker.close",
            Counter::ServeBreakerRejected => "serve.breaker.rejected",
            Counter::PlanRefreshFallback => "plan.refresh.fallback",
            Counter::ServeSessionOpened => "serve.session.opened",
            Counter::ServeSessionStep => "serve.session.step",
            Counter::ServeSessionRefresh => "serve.session.refresh",
            Counter::ServeCancelled => "serve.queue.cancelled",
            Counter::PrecondKind => "precond.kind",
            Counter::AinvNnz => "ainv.nnz",
            Counter::SpaiRows => "spai.rows",
            Counter::SpaiGathered => "spai.gathered",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Guard/outcome classification carried by [`IterationEvent`] and
/// [`RungEvent`]. Mirrors `spcg_solver::StopReason` plus the in-flight
/// `Running` state and the ladder-only `Skipped` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeStop {
    /// The iteration completed normally; the loop continues.
    Running,
    /// Residual dropped below the convergence threshold.
    Converged,
    /// Iteration budget exhausted without convergence.
    MaxIterations,
    /// A non-finite value was detected.
    Nan,
    /// Curvature/indefiniteness breakdown (`p'Ap <= 0` or `r'z <= 0`).
    Indefinite,
    /// Residual exceeded the divergence limit.
    Divergence,
    /// Residual stopped improving over the stagnation window.
    Stagnation,
    /// The iteration-count deadline budget expired mid-solve.
    Deadline,
    /// A recovery-ladder rung could not be built and was skipped.
    Skipped,
}

/// Which kind of recovery-ladder rung a [`RungEvent`] describes. Mirrors
/// `spcg_core::FallbackRung` without its payloads (those travel in
/// [`RungEvent::ratio`] / [`RungEvent::shift`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RungKind {
    /// The originally planned preconditioner.
    Planned,
    /// Re-sparsified at a milder ratio.
    Resparsify,
    /// Unsparsified operator.
    Unsparsified,
    /// Shifted factorization on `A + alpha*I`.
    Shifted,
    /// Jacobi (diagonal) last resort.
    Jacobi,
    /// Full-precision factors promoted from a stalled mixed-precision tier.
    PromotePrecision,
    /// Level-free FSAI fallback attempted before the Jacobi last resort.
    Fsai,
}

/// One PCG/CG/Chebyshev iteration as seen by the runtime guards.
///
/// Emitted once per completed iteration with `guard == Running`, and once
/// more when a guard fires (convergence, breakdown, budget) with the firing
/// classification. Non-finite floats are sanitized to `0.0` by the shipped
/// sinks so traces stay JSON-round-trippable; the `guard` field preserves
/// the NaN classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationEvent {
    /// Iteration index (0-based).
    pub k: usize,
    /// Residual 2-norm at the top of iteration `k`.
    pub residual: f64,
    /// Step length `alpha` (0.0 on guard-exit events).
    pub alpha: f64,
    /// Direction update `beta` (0.0 on guard-exit events).
    pub beta: f64,
    /// Guard classification: `Running` for a healthy iteration, otherwise
    /// the reason the loop stopped at this iteration.
    pub guard: ProbeStop,
}

/// One recovery-ladder rung attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RungEvent {
    /// Ladder position (0-based).
    pub attempt: usize,
    /// Which rung was attempted.
    pub rung: RungKind,
    /// Sparsification ratio for `Resparsify` rungs, `0.0` otherwise.
    pub ratio: f64,
    /// Diagonal shift `alpha` applied by the rung's factorization
    /// (`0.0` when unshifted).
    pub shift: f64,
    /// Outcome: the solve's stop classification, or `Skipped` when the
    /// rung's preconditioner could not be built.
    pub outcome: ProbeStop,
}

/// One iterative-refinement restart of a mixed-precision solve: the
/// full-precision outer loop measured the exact residual, found the
/// reduced-precision recurrence stalled, and restarted PCG on the
/// correction system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineEvent {
    /// Restart ordinal (1-based: the first restart is 1).
    pub restart: usize,
    /// Exact residual 2-norm `‖b − A·x‖₂` measured before the restart.
    pub residual: f64,
    /// Total PCG iterations spent before this restart.
    pub iterations: usize,
}

/// What the admission controller decided for one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Admitted at the requested quality tier.
    Admitted,
    /// Admitted, but pre-emptively downgraded to a cheaper tier.
    Downgraded,
    /// Shed before any work started (deadline infeasible, queue pressure,
    /// or a quarantined fingerprint).
    Shed,
}

/// One admission-controller decision (see [`Probe::admission`]).
///
/// `priority` is the request's priority class encoded as a small integer
/// (higher = more important) so the probe layer stays decoupled from the
/// serve crate's policy types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEvent {
    /// The controller's decision.
    pub verdict: AdmissionVerdict,
    /// Request priority class (higher = more important).
    pub priority: u8,
    /// Queue depth observed when the decision was made.
    pub queue_depth: usize,
    /// Estimated cost of the request in microseconds (0.0 when unknown).
    pub est_cost_us: f64,
}

/// Observability hook threaded through the SPCG pipeline.
///
/// Every method has an empty `#[inline]` default, so a probe only overrides
/// what it cares about and [`NoProbe`] monomorphizes to the un-instrumented
/// code. Sinks that need timestamps take them themselves (monotonic
/// [`std::time::Instant`]); the instrumented code never reads a clock on
/// behalf of the probe.
pub trait Probe {
    /// `false` only for [`NoProbe`]-like sinks; lets call sites skip work
    /// that exists purely to feed the probe (e.g. building a synthetic
    /// event from derived quantities).
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    /// A pipeline phase begins. Calls nest and are balanced by
    /// [`Probe::span_end`] with the same [`Span`] on every exit path.
    #[inline]
    fn span_begin(&mut self, span: Span) {
        let _ = span;
    }

    /// The innermost open phase of this kind ends.
    #[inline]
    fn span_end(&mut self, span: Span) {
        let _ = span;
    }

    /// A typed counter event; `value` accumulates across events.
    #[inline]
    fn counter(&mut self, counter: Counter, value: u64) {
        let _ = (counter, value);
    }

    /// One solver iteration completed or stopped (see [`IterationEvent`]).
    #[inline]
    fn iteration(&mut self, event: IterationEvent) {
        let _ = event;
    }

    /// One recovery-ladder rung was attempted (see [`RungEvent`]).
    #[inline]
    fn rung(&mut self, event: RungEvent) {
        let _ = event;
    }

    /// A mixed-precision solve restarted on the exact residual (see
    /// [`RefineEvent`]).
    #[inline]
    fn refine_restart(&mut self, event: &RefineEvent) {
        let _ = event;
    }

    /// The serve-layer admission controller decided a request's fate (see
    /// [`AdmissionEvent`]).
    #[inline]
    fn admission(&mut self, event: AdmissionEvent) {
        let _ = event;
    }
}

/// The zero-cost default probe: every hook is a no-op and the optimizer
/// erases the instrumentation entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    #[inline]
    fn span_begin(&mut self, span: Span) {
        (**self).span_begin(span);
    }
    #[inline]
    fn span_end(&mut self, span: Span) {
        (**self).span_end(span);
    }
    #[inline]
    fn counter(&mut self, counter: Counter, value: u64) {
        (**self).counter(counter, value);
    }
    #[inline]
    fn iteration(&mut self, event: IterationEvent) {
        (**self).iteration(event);
    }
    #[inline]
    fn rung(&mut self, event: RungEvent) {
        (**self).rung(event);
    }
    #[inline]
    fn refine_restart(&mut self, event: &RefineEvent) {
        (**self).refine_restart(event);
    }
    #[inline]
    fn admission(&mut self, event: AdmissionEvent) {
        (**self).admission(event);
    }
}

/// Replace non-finite floats with `0.0` so recorded traces serialize to
/// strict JSON and round-trip bit-exactly (the shimmed `serde_json` writes
/// `null` for NaN/inf, which would not re-parse as a float).
#[inline]
pub(crate) fn clean_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_disabled_and_inert() {
        let mut p = NoProbe;
        assert!(!p.is_enabled());
        p.span_begin(Span::SolveLoop);
        p.counter(Counter::Levels, 3);
        p.iteration(IterationEvent {
            k: 0,
            residual: 1.0,
            alpha: 0.5,
            beta: 0.1,
            guard: ProbeStop::Running,
        });
        p.rung(RungEvent {
            attempt: 0,
            rung: RungKind::Planned,
            ratio: 0.0,
            shift: 0.0,
            outcome: ProbeStop::Converged,
        });
        p.span_end(Span::SolveLoop);
    }

    #[test]
    fn mut_ref_delegates() {
        fn poke<P: Probe>(mut p: P) -> bool {
            p.span_begin(Span::Spmv);
            p.span_end(Span::Spmv);
            p.is_enabled()
        }
        let mut rec = RecordingProbe::new();
        assert!(poke(&mut rec));
        assert_eq!(rec.trace().events.len(), 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Span::SolveLoop.label(), "solve.loop");
        assert_eq!(Span::PlanRefresh.label(), "plan.refresh");
        assert_eq!(Counter::SimBytes.label(), "sim.bytes");
        assert_eq!(Counter::ServeSessionStep.label(), "serve.session.step");
        assert_eq!(Counter::ServeCancelled.label(), "serve.queue.cancelled");
        assert_eq!(format!("{}", Span::Spmv), "solve.spmv");
        assert_eq!(format!("{}", Counter::Syncs), "syncs");
        assert_eq!(Counter::ExecBlocks.label(), "exec.blocks");
    }

    #[test]
    fn clean_f64_sanitizes() {
        assert_eq!(clean_f64(1.5), 1.5);
        assert_eq!(clean_f64(f64::NAN), 0.0);
        assert_eq!(clean_f64(f64::INFINITY), 0.0);
    }
}
