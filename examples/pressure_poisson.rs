//! Pressure-Poisson projection step of an incompressible CFD solver — the
//! workload behind the paper's `Pres_Poisson` case study (§5.4), including
//! the cautionary tale: *excessive* sparsification of an anisotropic
//! operator removes structurally essential couplings and degrades
//! convergence.
//!
//! Run with: `cargo run --release --example pressure_poisson`

use spcg::core::sparsify_by_magnitude;
use spcg::prelude::*;
use spcg::sparse::generators::anisotropic_2d;

fn main() {
    // Boundary-layer-refined grid: cross-stream couplings are ~12x weaker
    // than streamwise ones, but they are what ties the flow field together.
    let a = anisotropic_2d(96, 64, 0.08);
    let n = a.n_rows();
    // Divergence source: a dipole (models a velocity divergence blob).
    let mut b = vec![0.0f64; n];
    b[n / 2 - 5] = 1.0;
    b[n / 2 + 5] = -1.0;

    let solver = SolverConfig::default().with_tol(1e-10);
    println!("pressure system: n = {n}, nnz = {}, wavefronts = {}", a.nnz(), wavefront_count(&a));

    // Sweep fixed ratios to expose the non-monotone behaviour.
    println!("\nfixed-ratio sweep (PCG on the ORIGINAL system, M from sparsified A):");
    println!("{:>7} {:>11} {:>12} {:>12}", "ratio", "iterations", "residual", "wavefronts");
    for pct in [0.0, 1.0, 5.0, 10.0, 20.0] {
        let a_hat = if pct == 0.0 { a.clone() } else { sparsify_by_magnitude(&a, pct).a_hat };
        match ilu0(&a_hat, ExecutionStrategy::Sequential) {
            Ok(f) => {
                let r = pcg(&a, &f, &b, &solver).expect("well-formed system");
                println!(
                    "{:>6}% {:>11} {:>12.2e} {:>12}",
                    pct,
                    r.iterations,
                    r.final_residual,
                    f.total_wavefronts()
                );
            }
            Err(e) => println!("{pct:>6}% factorization failed: {e}"),
        }
    }

    // Algorithm 2 navigates the trade-off automatically.
    let decision = wavefront_aware_sparsify(&a, &SparsifyParams::default());
    println!("\nAlgorithm 2 selected ratio {}% ({:?})", decision.chosen_ratio, decision.reason);
    for t in &decision.trace {
        println!(
            "  tried {:>4}%: indicator product {:.3} (tau = 1), passed = {}, wavefronts = {:?}",
            t.ratio, t.indicator.product, t.passed_convergence, t.wavefronts
        );
    }

    let f = ilu0(&decision.sparsified.a_hat, ExecutionStrategy::Sequential).expect("ILU(0)");
    let r = pcg(&a, &f, &b, &solver).expect("well-formed system");
    assert_eq!(r.stop, StopReason::Converged, "SPCG pressure solve diverged");
    println!(
        "\nSPCG pressure solve: {} iterations, residual {:.2e}",
        r.iterations, r.final_residual
    );

    // Projection sanity: mean pressure is defined up to a constant; the
    // dipole solution should be antisymmetric-ish, so its mean is near 0
    // relative to its magnitude.
    let mean: f64 = r.x.iter().sum::<f64>() / n as f64;
    let amp = r.x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    println!("pressure field: amplitude {amp:.3e}, mean {mean:.3e}");
    assert!(mean.abs() < amp, "pressure field degenerate");
}
