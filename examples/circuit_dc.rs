//! DC operating-point analysis of a resistor ladder network — the
//! circuit-simulation workload of the paper's Figure 9 (one of the
//! categories with the strongest end-to-end gains).
//!
//! Nodal analysis of a resistive network yields `G v = i` where `G` is the
//! conductance (graph-Laplacian-like) SPD matrix. Ladder/chain topologies
//! give narrow-banded matrices with *many* wavefronts — ideal SPCG
//! territory.
//!
//! Run with: `cargo run --release --example circuit_dc`

use spcg::prelude::*;
use spcg_gpusim::{pcg_iteration_cost, DeviceSpec};

/// Builds the conductance matrix of `sections` ladder sections: two rails
/// of series resistors with rungs between them, grounded at node 0 through
/// a shunt conductance, plus weak parasitic couplings (the droppable tail).
fn ladder_network(sections: usize, seed: u64) -> CsrMatrix<f64> {
    let n = 2 * sections;
    let mut rng = spcg::sparse::Rng::new(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut diag = vec![1e-3; n]; // small shunt to ground keeps G SPD
    let stamp = |coo: &mut CooMatrix<f64>, diag: &mut Vec<f64>, a: usize, b: usize, g: f64| {
        diag[a] += g;
        diag[b] += g;
        coo.push_sym(a, b, -g).expect("in range");
    };
    for s in 0..sections {
        let (top, bot) = (2 * s, 2 * s + 1);
        // rung resistor
        stamp(&mut coo, &mut diag, top, bot, rng.range(0.5, 2.0));
        if s + 1 < sections {
            // rail resistors
            stamp(&mut coo, &mut diag, top, 2 * (s + 1), rng.range(0.5, 2.0));
            stamp(&mut coo, &mut diag, bot, 2 * (s + 1) + 1, rng.range(0.5, 2.0));
        }
        // weak parasitic coupling to a node a few sections away
        if s + 4 < sections && rng.chance(0.3) {
            stamp(&mut coo, &mut diag, top, 2 * (s + 4) + 1, rng.range(1e-4, 5e-4));
        }
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).expect("in range");
    }
    coo.to_csr()
}

fn main() {
    let g = ladder_network(3000, 42);
    let n = g.n_rows();
    // 1 A injected at the far end, extracted at node 0.
    let mut i_vec = vec![0.0f64; n];
    i_vec[n - 1] = 1.0;
    i_vec[0] = -1.0;

    println!(
        "conductance matrix: n = {n}, nnz = {}, wavefronts = {}",
        g.nnz(),
        wavefront_count(&g)
    );

    let solver = SolverConfig::default().with_tol(1e-10);
    let base_plan =
        SpcgPlan::build(&g, SpcgOptions::default().with_sparsify(None).with_solver(solver.clone()))
            .expect("baseline analysis");
    let base = base_plan.solve(&i_vec).expect("baseline PCG");
    let spcg_plan =
        SpcgPlan::build(&g, SpcgOptions::default().with_solver(solver)).expect("SPCG analysis");
    let spcg = spcg_plan.solve(&i_vec).expect("SPCG");
    let d = spcg_plan.decision().expect("sparsified");

    println!(
        "baseline PCG-ILU(0): {} iterations, factors hold {} wavefronts",
        base.iterations,
        base_plan.factors().total_wavefronts()
    );
    println!(
        "SPCG-ILU(0)       : {} iterations, factors hold {} wavefronts (ratio {}%, reduction {:.1}%)",
        spcg.iterations,
        spcg_plan.factors().total_wavefronts(),
        d.chosen_ratio,
        d.wavefront_reduction()
    );

    // Price both on the A100 model.
    let dev = DeviceSpec::a100();
    let cb = pcg_iteration_cost(&dev, &g, base_plan.factors()).total_us();
    let cs = pcg_iteration_cost(&dev, &g, spcg_plan.factors()).total_us();
    println!("simulated A100 per-iteration speedup: {:.2}x", cb / cs);

    // Physics check: voltage drop from the injection node to ground is
    // positive and both solutions agree.
    let v_base = base.x[n - 1] - base.x[0];
    let v_spcg = spcg.x[n - 1] - spcg.x[0];
    println!("end-to-end voltage drop: baseline {v_base:.6} V, SPCG {v_spcg:.6} V");
    assert!(v_base > 0.0);
    assert!((v_base - v_spcg).abs() / v_base < 1e-6, "solutions disagree");
}
