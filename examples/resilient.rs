//! Breakdown-resilient solves: the runtime guards, the fallback ladder,
//! and deterministic fault injection, demonstrated end to end.
//!
//! Three scenarios:
//! 1. a healthy solve — the resilient path is a bitwise no-op;
//! 2. a NaN poisoned into the iteration — one fallback rung recovers;
//! 3. a fault persisted across every factored rung — the ladder descends
//!    all the way to Jacobi and still converges.
//!
//! Run with: `cargo run --release --example resilient`

use spcg::prelude::*;
use spcg::sparse::generators::{poisson_2d, with_magnitude_spread};

fn print_report(title: &str, solve: &ResilientSolve<f64>) {
    println!("\n{title}");
    for (i, a) in solve.report.attempts.iter().enumerate() {
        println!(
            "  attempt {i}: rung {:<16} {:?} after {} iterations (residual {:.2e}, {} factorization(s), alpha {:.1e})",
            a.rung.to_string(),
            a.stop,
            a.iterations,
            a.final_residual,
            a.factorizations,
            a.alpha,
        );
    }
    println!(
        "  => {} | cause {:?} | {} total iterations, {} extra factorizations",
        if solve.report.clean() {
            "clean (no fallback needed)"
        } else if solve.report.recovered() {
            "recovered"
        } else {
            "degraded (ladder exhausted)"
        },
        solve.report.cause(),
        solve.report.total_iterations(),
        solve.report.total_factorizations(),
    );
}

fn main() {
    let a = with_magnitude_spread(&poisson_2d(48, 48), 6.0, 11);
    let b: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let plan = SpcgPlan::build(&a, SpcgOptions::default()).expect("square SPD system");
    println!(
        "system: n = {}, sparsified = {}, ladder = {:?}",
        plan.n(),
        plan.is_sparsified(),
        plan.ladder(&ResilienceOptions::default())
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
    );

    // 1. Healthy solve: the guards watch, nothing fires, the result is
    //    bitwise identical to a plain solve.
    let healthy = plan.solve_resilient(&b).unwrap();
    assert!(healthy.converged() && healthy.report.clean());
    print_report("healthy solve:", &healthy);

    // 2. A NaN injected into iteration 2 of the planned attempt — the
    //    kernel-fault scenario. The guard classifies it, the ladder
    //    retries on the next rung.
    let mut ws = plan.make_workspace();
    let nan_opts =
        ResilienceOptions { fault: Some(FaultInjection::nan_at(2)), ..Default::default() };
    let recovered = plan.solve_resilient_with_workspace(&b, &nan_opts, &mut ws).unwrap();
    assert!(recovered.converged());
    assert_eq!(recovered.report.cause(), Some(BreakdownKind::Nan));
    print_report("NaN at iteration 2:", &recovered);

    // 3. The same fault persisted across every rung but the last: the
    //    ladder walks its full height and the Jacobi safety net — which
    //    has no factors to corrupt — finishes the job.
    let depth = plan.ladder(&ResilienceOptions::default()).len();
    let persistent = ResilienceOptions {
        fault: Some(FaultInjection::nan_at(0).persist_for(depth - 1)),
        ..Default::default()
    };
    let bottomed = plan.solve_resilient_with_workspace(&b, &persistent, &mut ws).unwrap();
    assert!(bottomed.converged());
    assert_eq!(bottomed.report.attempts.last().unwrap().rung, FallbackRung::Jacobi);
    print_report("fault persisted through every factored rung:", &bottomed);

    // The recovered iterates solve the same system as the healthy one.
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let drift: Vec<f64> =
        healthy.result.x.iter().zip(&recovered.result.x).map(|(h, r)| h - r).collect();
    println!(
        "\nrecovered-vs-healthy solution drift: {:.2e} (relative)",
        norm(&drift) / norm(&healthy.result.x)
    );
}
