//! Tuning the sparsification thresholds (τ, ω) for your own matrices —
//! the grid search the paper describes in §4.1 ("the convergence threshold
//! τ of 1 and wavefront threshold ω of 10% are selected based on a grid
//! search over a swept range").
//!
//! Run with: `cargo run --release --example tune_sparsification`

use spcg::prelude::*;
use spcg_gpusim::{plan_iteration_cost, DeviceSpec};
use spcg_suite::fast_collection;

fn main() {
    // Tune on a deterministic sample of the suite (in practice: your own
    // application matrices).
    let specs: Vec<_> = fast_collection().into_iter().step_by(3).collect();
    let device = DeviceSpec::a100();
    let solver = SolverConfig::default().with_tol(1e-9).with_max_iters(500);

    println!("grid search over (tau, omega) on {} matrices\n", specs.len());
    println!(
        "{:>6} {:>8} {:>16} {:>14} {:>12}",
        "tau", "omega", "gmean speedup", "%converged", "mean ratio"
    );

    let mut best: Option<(f64, f64, f64)> = None;
    for &tau in &[0.25, 1.0, 4.0] {
        for &omega in &[5.0, 10.0, 25.0] {
            let params = SparsifyParams { tau, omega, ..Default::default() };
            let mut log_speedups = Vec::new();
            let mut converged = 0usize;
            let mut ratio_sum = 0.0f64;
            let mut count = 0usize;
            for spec in &specs {
                let a = spec.build();
                let b = spec.rhs(a.n_rows());
                // Per-iteration cost only needs the plans' analysis; the
                // solve itself runs on the sparsified plan to check
                // convergence for this (tau, omega) setting.
                let Ok(base) = SpcgPlan::build(
                    &a,
                    &SpcgOptions { sparsify: None, solver: solver.clone(), ..Default::default() },
                ) else {
                    continue;
                };
                let Ok(spcg) = SpcgPlan::build(
                    &a,
                    &SpcgOptions {
                        sparsify: Some(params.clone()),
                        solver: solver.clone(),
                        ..Default::default()
                    },
                ) else {
                    continue;
                };
                let tb = plan_iteration_cost(&device, &base).total_us();
                let ts = plan_iteration_cost(&device, &spcg).total_us();
                log_speedups.push((tb / ts).ln());
                if spcg.solve(&b).is_ok_and(|r| r.converged()) {
                    converged += 1;
                }
                ratio_sum += spcg.decision().map(|d| d.chosen_ratio).unwrap_or(0.0);
                count += 1;
            }
            let gmean = (log_speedups.iter().sum::<f64>() / log_speedups.len().max(1) as f64).exp();
            let conv_pct = 100.0 * converged as f64 / count.max(1) as f64;
            println!(
                "{tau:>6} {omega:>7}% {gmean:>15.3}x {conv_pct:>13.1}% {:>11.1}%",
                ratio_sum / count.max(1) as f64
            );
            // Prefer the fastest setting among those that keep everything
            // converging.
            if conv_pct >= 99.9 && best.map(|(_, _, g)| gmean > g).unwrap_or(true) {
                best = Some((tau, omega, gmean));
            }
        }
    }
    match best {
        Some((tau, omega, gmean)) => println!(
            "\nrecommended: tau = {tau}, omega = {omega}% (gmean per-iteration speedup {gmean:.3}x)\n\
             paper's grid search landed on tau = 1, omega = 10%."
        ),
        None => println!("\nno setting kept every matrix converging — widen the sweep"),
    }
}
