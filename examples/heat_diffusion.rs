//! Implicit heat diffusion through a layered (composite) wall — the
//! thermal-simulation workload the paper's introduction motivates.
//!
//! Backward-Euler time stepping of `∂u/∂t = ∇·(κ∇u)` on a 2-D domain made
//! of material layers with weakly conducting interfaces produces one SPD
//! solve `(M + Δt·K) u_{t+1} = M u_t + Δt·q` per step. The preconditioner
//! (and its sparsification) is built ONCE and amortized over all steps —
//! exactly the repeated-solve setting where SPCG's setup cost pays off.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use spcg::prelude::*;
use spcg::sparse::spmv::spmv_alloc;
use spcg::suite::{Ordering, Recipe};
use std::time::Instant;

const NX: usize = 64;
const NY: usize = 64;
const STEPS: usize = 20;

fn main() {
    // (M + Δt·K): the layered Poisson generator already carries the mass
    // term on its diagonal; interfaces conduct ~60x worse than the bulk.
    let a = Recipe::Layered2D { nx: NX, ny: NY, period: 4, weak: 0.015 }.build(
        11,
        1.5,
        Ordering::Natural,
    );
    let n = a.n_rows();

    // Initial temperature: a hot spot in the lower-left block.
    let mut u = vec![0.0f64; n];
    for y in 0..8 {
        for x in 0..8 {
            u[y * NX + x] = 100.0;
        }
    }
    let config = SolverConfig::default().with_tol(1e-10);

    // --- baseline: ILU(0) of A, built once ---
    let t = Instant::now();
    let base_factors = ilu0(&a, ExecutionStrategy::Sequential).expect("ILU(0)");
    let base_setup = t.elapsed();

    // --- SPCG: sparsify once, factor once ---
    let t = Instant::now();
    let decision = wavefront_aware_sparsify(&a, &SparsifyParams::default());
    let spcg_factors =
        ilu0(&decision.sparsified.a_hat, ExecutionStrategy::Sequential).expect("ILU(0) of A-hat");
    let spcg_setup = t.elapsed();

    println!(
        "setup: baseline {:.2?} ({} wavefronts) vs SPCG {:.2?} ({} wavefronts, ratio {}%)",
        base_setup,
        base_factors.total_wavefronts(),
        spcg_setup,
        spcg_factors.total_wavefronts(),
        decision.chosen_ratio
    );

    // The generator's mass term is 0.1·I, so one backward-Euler step is
    // (0.1·M + Δt·K) u_{t+1} = 0.1·M u_t — the propagator's spectrum stays
    // below 1 and the field decays, as physics demands.
    const MASS: f64 = 0.1;
    let mut total_iters_base = 0usize;
    let mut total_iters_spcg = 0usize;
    let mut u_base = u.clone();
    let mut u_spcg = u.clone();
    let t = Instant::now();
    for _ in 0..STEPS {
        let rhs: Vec<f64> = u_base.iter().map(|v| MASS * v).collect();
        let r = pcg(&a, &base_factors, &rhs, &config).expect("well-formed system");
        assert_eq!(r.stop, StopReason::Converged, "baseline step diverged");
        total_iters_base += r.iterations;
        u_base = r.x;
    }
    let base_time = t.elapsed();
    let t = Instant::now();
    for _ in 0..STEPS {
        let rhs: Vec<f64> = u_spcg.iter().map(|v| MASS * v).collect();
        let r = pcg(&a, &spcg_factors, &rhs, &config).expect("well-formed system");
        assert_eq!(r.stop, StopReason::Converged, "SPCG step diverged");
        total_iters_spcg += r.iterations;
        u_spcg = r.x;
    }
    let spcg_time = t.elapsed();

    println!(
        "{STEPS} implicit steps: baseline {total_iters_base} iterations ({base_time:.2?}), \
         SPCG {total_iters_spcg} iterations ({spcg_time:.2?})"
    );

    // The two trajectories solve the same PDE: temperatures agree.
    let max_diff = u_base.iter().zip(&u_spcg).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
    println!("max temperature difference between baseline and SPCG: {max_diff:.2e}");
    assert!(max_diff < 1e-6, "solutions diverged: {max_diff}");

    // Physics sanity: implicit diffusion with a decaying propagator — the
    // peak temperature must fall monotonically below the initial 100.
    let peak = u_spcg.iter().fold(0.0f64, |m, &v| m.max(v));
    println!("peak temperature after {STEPS} steps: {peak:.3e} (decaying toward equilibrium)");
    assert!(peak < 100.0 && peak > 0.0, "diffusion produced nonsense: {peak}");

    // And the final state really solves its step equation.
    let ax = spmv_alloc(&a, &u_spcg);
    let prev_rhs: Vec<f64> = u_base.iter().map(|v| MASS * v).collect();
    let _ = prev_rhs; // u_base == u_spcg up to tolerance; checked above
    let energy: f64 = ax.iter().zip(&u_spcg).map(|(p, q)| p * q).sum();
    println!("final quadratic energy u'Au: {energy:.3e} (positive for SPD)");
    assert!(energy > 0.0);
}
