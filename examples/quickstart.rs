//! Quickstart: solve one SPD system with plain CG, PCG-ILU(0), and the
//! sparsified SPCG pipeline, and compare their behaviour.
//!
//! Run with: `cargo run --release --example quickstart`

use spcg::prelude::*;
use spcg::suite::{Ordering, Recipe};

fn main() {
    // A layered 2-D diffusion operator: 64x64 grid, weak couplings every
    // 4th grid line plus a far-field noise tail — the structure where
    // wavefront-aware sparsification shines.
    let a = Recipe::Layered2D { nx: 64, ny: 64, period: 4, weak: 0.015 }.build(
        7,
        1.5,
        Ordering::Natural,
    );
    let n = a.n_rows();
    let b = vec![1.0f64; n];
    println!("system: n = {n}, nnz = {}", a.nnz());
    println!("lower-triangle wavefronts: {}", wavefront_count(&a));

    let config = SolverConfig::default().with_tol(1e-10);

    // 1. Plain conjugate gradient.
    let plain = cg(&a, &b, &config).expect("well-formed system");
    println!(
        "\nCG           : {:>4} iterations, residual {:.2e}, {:?}",
        plain.iterations, plain.final_residual, plain.stop
    );

    // 2. PCG with a non-sparsified ILU(0) preconditioner.
    let factors = ilu0(&a, ExecutionStrategy::Sequential).expect("ILU(0) factorization");
    let pcg_run = pcg(&a, &factors, &b, &config).expect("well-formed system");
    println!(
        "PCG-ILU(0)   : {:>4} iterations, residual {:.2e}, {} wavefronts in the factors",
        pcg_run.iterations,
        pcg_run.final_residual,
        factors.total_wavefronts()
    );

    // 3. The full SPCG pipeline (Figure 2 of the paper): wavefront-aware
    //    sparsification -> ILU(0) of the sparsified matrix -> PCG on the
    //    ORIGINAL system. Build the analysis once as a plan, then solve.
    let plan =
        SpcgPlan::build(&a, SpcgOptions::default().with_solver(config)).expect("SPCG pipeline");
    let spcg_run = plan.solve(&b).expect("well-formed system");
    let decision = plan.decision().expect("sparsification ran");
    println!(
        "SPCG-ILU(0)  : {:>4} iterations, residual {:.2e}, {} wavefronts in the factors",
        spcg_run.iterations,
        spcg_run.final_residual,
        plan.factors().total_wavefronts()
    );
    println!(
        "\nsparsification: chose ratio {}% ({:?}), wavefronts {} -> {} ({:.1}% reduction)",
        decision.chosen_ratio,
        decision.reason,
        decision.wavefronts_original,
        decision.wavefronts_sparsified,
        decision.wavefront_reduction()
    );

    // Verify both solutions solve the same original system.
    let residual = |x: &[f64]| {
        let ax = spcg::sparse::spmv::spmv_alloc(&a, x);
        ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt()
    };
    println!(
        "\ntrue residuals vs the ORIGINAL A: PCG {:.2e}, SPCG {:.2e}",
        residual(&pcg_run.x),
        residual(&spcg_run.x)
    );

    // 4. The plan amortizes its analysis across right-hand sides: solve a
    //    batch of independent loads with `solve_many` (parallel across RHS).
    let loads: Vec<Vec<f64>> =
        (1..=4).map(|k| (0..n).map(|i| ((i + k) % 11) as f64 / 10.0).collect()).collect();
    let batch: Vec<_> =
        plan.solve_many(&loads).into_iter().map(|r| r.expect("well-formed system")).collect();
    let iters: Vec<usize> = batch.iter().map(|r| r.iterations).collect();
    println!("batched solve of {} further RHS, iterations per RHS: {iters:?}", loads.len());

    // 5. Observe where the time goes: a HistogramProbe aggregates span
    //    latencies per phase (p50/p95/max) with no per-event allocation.
    let mut hist = HistogramProbe::new();
    let mut ws = plan.make_workspace();
    for load in &loads {
        plan.solve_with_workspace_probed(load, &mut ws, &mut hist).expect("well-formed system");
    }
    println!("\nphase latency histogram over {} probed solves:", loads.len());
    print!("{}", hist.render());
}
